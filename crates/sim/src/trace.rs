//! Optional event tracing.
//!
//! When enabled, the engine records a bounded ring of trace records —
//! message deliveries, chain stage transitions, scheduler dispatches and
//! preemptions — that can be dumped after a run to debug protocol or
//! scheduling problems (this is how the harness's own deadlocks were
//! found during development). Disabled tracing costs one branch per
//! event.
//!
//! Records are allocation-free: subjects are typed ids ([`TraceRef`])
//! and details a small payload enum ([`TraceDetail`]), so enabling the
//! tracer does not put `String` allocations on the hot path. The ring
//! counts how many records it evicted ([`Tracer::dropped`]) so truncated
//! history is visible instead of silent.

use std::collections::VecDeque;
use std::fmt;

use crate::ids::{ActorId, ThreadId};
use crate::time::SimTime;

/// What kind of engine event a record describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// A message was delivered to an actor.
    Deliver,
    /// A chain advanced to a new stage.
    ChainStage,
    /// A chain completed.
    ChainDone,
    /// The scheduler put a thread on a core.
    Dispatch,
    /// A running thread was preempted.
    Preempt,
    /// A thread went idle.
    Idle,
}

impl TraceKind {
    /// Short label for rendering.
    pub fn label(self) -> &'static str {
        match self {
            TraceKind::Deliver => "deliver",
            TraceKind::ChainStage => "stage",
            TraceKind::ChainDone => "chain-done",
            TraceKind::Dispatch => "dispatch",
            TraceKind::Preempt => "preempt",
            TraceKind::Idle => "idle",
        }
    }
}

/// The subject of a trace record, as a typed id (no allocation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceRef {
    /// An actor (rendered with its id; resolve names via
    /// [`crate::World::actor_name`]).
    Actor(ActorId),
    /// A schedulable thread.
    Thread(ThreadId),
    /// A chain, by raw id.
    Chain(u64),
    /// A static label (tests, one-off subsystems).
    Static(&'static str),
}

impl fmt::Display for TraceRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceRef::Actor(a) => write!(f, "actor{}", a.raw()),
            TraceRef::Thread(t) => write!(f, "thread{}", t.raw()),
            TraceRef::Chain(c) => write!(f, "chain{c}"),
            TraceRef::Static(s) => f.write_str(s),
        }
    }
}

/// Structured detail payload of a trace record (no allocation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TraceDetail {
    /// Nothing extra.
    #[default]
    None,
    /// A scheduler event on a core (dispatch/preempt), flagging whether
    /// the thread migrated off its previous core.
    Core {
        /// Core index within the host.
        core: u32,
        /// Whether the dispatch paid the migration penalty.
        migrated: bool,
    },
}

impl fmt::Display for TraceDetail {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceDetail::None => Ok(()),
            TraceDetail::Core { core, migrated } => {
                write!(
                    f,
                    "core{core}{}",
                    if *migrated { " (migrated)" } else { "" }
                )
            }
        }
    }
}

/// One trace record.
#[derive(Debug, Clone, Copy)]
pub struct TraceRecord {
    /// When it happened.
    pub t: SimTime,
    /// What happened.
    pub kind: TraceKind,
    /// Subject (actor, thread, chain).
    pub subject: TraceRef,
    /// Structured detail.
    pub detail: TraceDetail,
}

impl fmt::Display for TraceRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{:>12}] {:10} {:24} {}",
            self.t,
            self.kind.label(),
            self.subject.to_string(),
            self.detail
        )
    }
}

/// A bounded trace ring. Created disabled; enable with
/// [`Tracer::enable`].
#[derive(Debug, Default)]
pub struct Tracer {
    enabled: bool,
    capacity: usize,
    ring: VecDeque<TraceRecord>,
    dropped: u64,
}

impl Tracer {
    /// Creates a disabled tracer.
    pub fn new() -> Self {
        Tracer {
            enabled: false,
            capacity: 4096,
            ring: VecDeque::new(),
            dropped: 0,
        }
    }

    /// Starts recording, keeping at most `capacity` most-recent records.
    pub fn enable(&mut self, capacity: usize) {
        self.enabled = true;
        self.capacity = capacity.max(1);
    }

    /// Stops recording (existing records are kept).
    pub fn disable(&mut self) {
        self.enabled = false;
    }

    /// Whether records are being captured.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records one event (no-op when disabled).
    pub fn record(&mut self, t: SimTime, kind: TraceKind, subject: TraceRef, detail: TraceDetail) {
        if !self.enabled {
            return;
        }
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
            self.dropped += 1;
        }
        self.ring.push_back(TraceRecord {
            t,
            kind,
            subject,
            detail,
        });
    }

    /// The captured records, oldest first.
    pub fn records(&self) -> impl Iterator<Item = &TraceRecord> {
        self.ring.iter()
    }

    /// Number of records currently held.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Whether nothing has been captured.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// How many records were evicted from the ring.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Renders the whole ring, filtered to `kinds` (empty = all).
    pub fn render(&self, kinds: &[TraceKind]) -> String {
        let mut out = String::new();
        if self.dropped > 0 {
            out.push_str(&format!(
                "... {} earlier records dropped ...\n",
                self.dropped
            ));
        }
        for r in &self.ring {
            if kinds.is_empty() || kinds.contains(&r.kind) {
                out.push_str(&r.to_string());
                out.push('\n');
            }
        }
        out
    }

    /// Clears the ring (keeps the enabled state).
    pub fn clear(&mut self) {
        self.ring.clear();
        self.dropped = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(tr: &mut Tracer, n: u64, kind: TraceKind) {
        tr.record(
            SimTime::from_nanos(n),
            kind,
            TraceRef::Chain(n),
            TraceDetail::None,
        );
    }

    #[test]
    fn disabled_records_nothing() {
        let mut tr = Tracer::new();
        rec(&mut tr, 1, TraceKind::Deliver);
        assert!(tr.is_empty());
        assert!(!tr.is_enabled());
    }

    #[test]
    fn ring_bounds_and_drops() {
        let mut tr = Tracer::new();
        tr.enable(3);
        for i in 0..5 {
            rec(&mut tr, i, TraceKind::Dispatch);
        }
        assert_eq!(tr.len(), 3);
        assert_eq!(tr.dropped(), 2);
        let first = tr.records().next().unwrap();
        assert_eq!(first.subject, TraceRef::Chain(2));
    }

    #[test]
    fn render_filters_by_kind() {
        let mut tr = Tracer::new();
        tr.enable(10);
        rec(&mut tr, 1, TraceKind::Deliver);
        rec(&mut tr, 2, TraceKind::Preempt);
        let all = tr.render(&[]);
        assert!(all.contains("deliver") && all.contains("preempt"));
        let only = tr.render(&[TraceKind::Preempt]);
        assert!(!only.contains("deliver") && only.contains("preempt"));
    }

    #[test]
    fn subjects_and_details_render() {
        let mut tr = Tracer::new();
        tr.enable(10);
        tr.record(
            SimTime::from_nanos(1),
            TraceKind::Dispatch,
            TraceRef::Thread(ThreadId::from_raw(3)),
            TraceDetail::Core {
                core: 2,
                migrated: true,
            },
        );
        let out = tr.render(&[]);
        assert!(out.contains("thread3"));
        assert!(out.contains("core2 (migrated)"));
    }

    #[test]
    fn clear_keeps_enabled() {
        let mut tr = Tracer::new();
        tr.enable(10);
        rec(&mut tr, 1, TraceKind::Idle);
        tr.clear();
        assert!(tr.is_empty());
        assert!(tr.is_enabled());
        rec(&mut tr, 2, TraceKind::Idle);
        assert_eq!(tr.len(), 1);
    }
}

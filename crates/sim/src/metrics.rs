//! Lightweight metrics: counters, gauges and sample distributions.
//!
//! Workload actors record observations (transaction latencies, bytes read,
//! completed operations) under string keys; experiment harnesses read them
//! back after the run.
//!
//! # Interning
//!
//! Every key is interned once into a dense id ([`CounterId`] /
//! [`SampleId`] / [`GaugeId`]); recording through an id is a plain `Vec`
//! index with no hashing or tree walk. The string-keyed API is a thin
//! resolve-then-record wrapper kept for tests and cold paths. Hot actors
//! hold a [`LazyCounter`] / [`LazySamples`] / [`LazyGauge`] that resolves
//! its key on first use and records through the cached id afterwards.
//!
//! [`Metrics::reset`] keeps registrations (ids stay valid across warm-up /
//! measurement phases) but clears values; keys that were never touched
//! since the last reset are invisible to the read-side API, matching the
//! semantics of a registry that only materializes keys on first write.

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;

use crate::time::{SimDuration, SimTime};

/// A set of recorded samples with order statistics.
///
/// Order statistics ([`Samples::quantile`]) are served from a lazily
/// rebuilt sorted copy, so asking for p50/p95/p99 in a row sorts once, and
/// a fresh recording only invalidates the cache.
#[derive(Debug, Clone, Default)]
pub struct Samples {
    values: Vec<f64>,
    sorted: RefCell<Vec<f64>>,
    sorted_valid: Cell<bool>,
}

impl Samples {
    /// Records one observation.
    pub fn record(&mut self, v: f64) {
        self.values.push(v);
        self.sorted_valid.set(false);
    }

    /// Number of observations.
    pub fn count(&self) -> usize {
        self.values.len()
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        self.values.iter().sum()
    }

    /// Arithmetic mean, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            0.0
        } else {
            self.sum() / self.values.len() as f64
        }
    }

    /// The `q`-quantile (0 ≤ q ≤ 1) by nearest-rank, or 0.0 when empty.
    ///
    /// A single-sample set returns that sample for every `q`. Sets
    /// containing NaN sort by IEEE 754 total order (NaN above +inf)
    /// instead of panicking, so a poisoned series still renders its
    /// finite quantiles deterministically.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        if !self.sorted_valid.get() {
            let mut sorted = self.sorted.borrow_mut();
            sorted.clear();
            sorted.extend_from_slice(&self.values);
            sorted.sort_by(f64::total_cmp);
            self.sorted_valid.set(true);
        }
        let sorted = self.sorted.borrow();
        let idx = ((sorted.len() as f64 - 1.0) * q.clamp(0.0, 1.0)).round() as usize;
        sorted[idx]
    }

    /// Median (`quantile(0.5)`).
    pub fn p50(&self) -> f64 {
        self.quantile(0.5)
    }

    /// 99th percentile (`quantile(0.99)`).
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }

    /// 99.9th percentile (`quantile(0.999)`) — the tail the paper's
    /// saturation argument is about.
    pub fn p999(&self) -> f64 {
        self.quantile(0.999)
    }

    /// Largest observation, or 0.0 when empty.
    pub fn max(&self) -> f64 {
        // vread-lint: allow(float-accum, "f64::max is order-independent (commutative, associative)")
        self.values.iter().cloned().fold(0.0, f64::max)
    }

    /// Raw observations in insertion order.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    fn clear(&mut self) {
        self.values.clear();
        self.sorted.get_mut().clear();
        self.sorted_valid.set(false);
    }
}

/// Dense handle to an interned counter key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CounterId(u32);

/// Dense handle to an interned sample key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SampleId(u32);

/// Dense handle to an interned gauge key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GaugeId(u32);

/// The world's metrics registry.
///
/// # Gauge visibility semantics
///
/// A gauge holds its *last written value* — unlike a counter it can go
/// down, and unlike a sample set it keeps no history (the timeline
/// sampler is what turns gauges into time series). The read side mirrors
/// counters exactly: a gauge that has not been written since the last
/// [`Metrics::reset`] is invisible to [`Metrics::gauge_keys`] and reads
/// as 0.0, so reports stay byte-identical when an instrumented code path
/// never runs. `reset` clears gauge last-values along with the touched
/// bits — a gauge must not leak a pre-reset level (e.g. in-flight reads
/// from a warm-up phase) into the measurement phase.
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    counter_index: BTreeMap<String, CounterId>,
    counter_vals: Vec<f64>,
    counter_touched: Vec<bool>,
    sample_index: BTreeMap<String, SampleId>,
    sample_sets: Vec<Samples>,
    gauge_index: BTreeMap<String, GaugeId>,
    gauge_vals: Vec<f64>,
    gauge_touched: Vec<bool>,
}

impl Metrics {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    // -- interning -----------------------------------------------------------

    /// Interns a counter key (idempotent) and returns its dense id.
    pub fn register_counter(&mut self, key: &str) -> CounterId {
        if let Some(&id) = self.counter_index.get(key) {
            return id;
        }
        let id = CounterId(u32::try_from(self.counter_vals.len()).expect("counter id overflow"));
        self.counter_index.insert(key.to_owned(), id);
        self.counter_vals.push(0.0);
        self.counter_touched.push(false);
        id
    }

    /// Interns a sample key (idempotent) and returns its dense id.
    pub fn register_sample(&mut self, key: &str) -> SampleId {
        if let Some(&id) = self.sample_index.get(key) {
            return id;
        }
        let id = SampleId(u32::try_from(self.sample_sets.len()).expect("sample id overflow"));
        self.sample_index.insert(key.to_owned(), id);
        self.sample_sets.push(Samples::default());
        id
    }

    /// Interns a gauge key (idempotent) and returns its dense id.
    pub fn register_gauge(&mut self, key: &str) -> GaugeId {
        if let Some(&id) = self.gauge_index.get(key) {
            return id;
        }
        let id = GaugeId(u32::try_from(self.gauge_vals.len()).expect("gauge id overflow"));
        self.gauge_index.insert(key.to_owned(), id);
        self.gauge_vals.push(0.0);
        self.gauge_touched.push(false);
        id
    }

    // -- id-based hot path ---------------------------------------------------

    /// Adds `v` to an interned counter (O(1), no hashing).
    #[inline]
    pub fn add_to(&mut self, id: CounterId, v: f64) {
        self.counter_vals[id.0 as usize] += v;
        self.counter_touched[id.0 as usize] = true;
    }

    /// Increments an interned counter by 1.
    #[inline]
    pub fn incr_to(&mut self, id: CounterId) {
        self.add_to(id, 1.0);
    }

    /// Current value of an interned counter.
    #[inline]
    pub fn counter_value(&self, id: CounterId) -> f64 {
        self.counter_vals[id.0 as usize]
    }

    /// Records a raw observation under an interned sample key (O(1)).
    #[inline]
    pub fn record_to(&mut self, id: SampleId, v: f64) {
        self.sample_sets[id.0 as usize].record(v);
    }

    /// Sets an interned gauge to `v` (O(1), no hashing).
    #[inline]
    pub fn set_to(&mut self, id: GaugeId, v: f64) {
        self.gauge_vals[id.0 as usize] = v;
        self.gauge_touched[id.0 as usize] = true;
    }

    /// Adds `dv` (may be negative) to an interned gauge.
    #[inline]
    pub fn gauge_add_to(&mut self, id: GaugeId, dv: f64) {
        self.gauge_vals[id.0 as usize] += dv;
        self.gauge_touched[id.0 as usize] = true;
    }

    /// Last written value of an interned gauge.
    #[inline]
    pub fn gauge_value(&self, id: GaugeId) -> f64 {
        self.gauge_vals[id.0 as usize]
    }

    // -- string API (resolve-once wrapper) -----------------------------------

    /// Adds `v` to counter `key` (creating it at 0).
    pub fn add(&mut self, key: &str, v: f64) {
        let id = self.register_counter(key);
        self.add_to(id, v);
    }

    /// Increments counter `key` by 1.
    pub fn incr(&mut self, key: &str) {
        self.add(key, 1.0);
    }

    /// Current value of counter `key` (0 when absent).
    pub fn counter(&self, key: &str) -> f64 {
        self.counter_index
            .get(key)
            .map_or(0.0, |&id| self.counter_vals[id.0 as usize])
    }

    /// Records a raw sample under `key`.
    pub fn sample(&mut self, key: &str, v: f64) {
        let id = self.register_sample(key);
        self.record_to(id, v);
    }

    /// Records a duration sample (stored in milliseconds) under `key`.
    pub fn sample_duration(&mut self, key: &str, d: SimDuration) {
        self.sample(key, d.as_millis_f64());
    }

    /// Sets gauge `key` to `v` (creating it).
    pub fn set_gauge(&mut self, key: &str, v: f64) {
        let id = self.register_gauge(key);
        self.set_to(id, v);
    }

    /// Adds `dv` (may be negative) to gauge `key` (creating it at 0).
    pub fn gauge_add(&mut self, key: &str, dv: f64) {
        let id = self.register_gauge(key);
        self.gauge_add_to(id, dv);
    }

    /// Last written value of gauge `key` (0.0 when absent or untouched).
    pub fn gauge(&self, key: &str) -> f64 {
        self.gauge_index
            .get(key)
            .map_or(0.0, |&id| self.gauge_vals[id.0 as usize])
    }

    /// The sample set under `key`, if any samples were recorded.
    pub fn samples(&self, key: &str) -> Option<&Samples> {
        let set = &self.sample_sets[self.sample_index.get(key)?.0 as usize];
        if set.count() == 0 {
            None
        } else {
            Some(set)
        }
    }

    /// Mean of samples under `key` (0.0 when absent).
    pub fn mean(&self, key: &str) -> f64 {
        self.samples(key).map_or(0.0, Samples::mean)
    }

    /// Keys of counters written since the last reset (sorted).
    pub fn counter_keys(&self) -> impl Iterator<Item = &str> {
        self.counter_index
            .iter()
            .filter(|(_, id)| self.counter_touched[id.0 as usize])
            .map(|(k, _)| k.as_str())
    }

    /// Keys of samples recorded since the last reset (sorted).
    pub fn sample_keys(&self) -> impl Iterator<Item = &str> {
        self.sample_index
            .iter()
            .filter(|(_, id)| self.sample_sets[id.0 as usize].count() > 0)
            .map(|(k, _)| k.as_str())
    }

    /// `(key, value)` of gauges written since the last reset (sorted by
    /// key — the timeline sampler relies on this order being
    /// deterministic).
    pub fn gauges(&self) -> impl Iterator<Item = (&str, f64)> {
        self.gauge_index
            .iter()
            .filter(|(_, id)| self.gauge_touched[id.0 as usize])
            .map(|(k, id)| (k.as_str(), self.gauge_vals[id.0 as usize]))
    }

    /// Throughput helper: counter `key` divided by elapsed seconds.
    pub fn rate_per_sec(&self, key: &str, start: SimTime, end: SimTime) -> f64 {
        let secs = end.since(start).as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.counter(key) / secs
        }
    }

    /// Clears all recorded values (used between warm-up and measurement
    /// phases). Interned ids stay valid; untouched keys disappear from the
    /// read-side API until written again. Gauge last-values are cleared
    /// too — a level gauge left over from warm-up (e.g. in-flight reads)
    /// must not be read as a measurement-phase level.
    pub fn reset(&mut self) {
        self.counter_vals.fill(0.0);
        self.counter_touched.fill(false);
        for s in &mut self.sample_sets {
            s.clear();
        }
        self.gauge_vals.fill(0.0);
        self.gauge_touched.fill(false);
    }
}

/// A counter handle that resolves its key on first use.
///
/// Intended to live inside an actor: construct with the key, then record
/// through it with no per-event string lookup. Deliberately `!Sync` (the
/// cached id is only meaningful for the `Metrics` it was resolved
/// against, i.e. one world).
#[derive(Debug)]
pub struct LazyCounter {
    key: &'static str,
    id: Cell<Option<CounterId>>,
}

impl LazyCounter {
    /// Creates an unresolved handle for `key`.
    pub const fn new(key: &'static str) -> Self {
        LazyCounter {
            key,
            id: Cell::new(None),
        }
    }

    #[inline]
    fn id(&self, m: &mut Metrics) -> CounterId {
        match self.id.get() {
            Some(id) => id,
            None => {
                let id = m.register_counter(self.key);
                self.id.set(Some(id));
                id
            }
        }
    }

    /// Adds `v` to the counter.
    #[inline]
    pub fn add(&self, m: &mut Metrics, v: f64) {
        let id = self.id(m);
        m.add_to(id, v);
    }

    /// Increments the counter by 1.
    #[inline]
    pub fn incr(&self, m: &mut Metrics) {
        self.add(m, 1.0);
    }
}

/// A sample-set handle that resolves its key on first use.
///
/// See [`LazyCounter`] for the usage pattern.
#[derive(Debug)]
pub struct LazySamples {
    key: &'static str,
    id: Cell<Option<SampleId>>,
}

impl LazySamples {
    /// Creates an unresolved handle for `key`.
    pub const fn new(key: &'static str) -> Self {
        LazySamples {
            key,
            id: Cell::new(None),
        }
    }

    /// Records one observation.
    #[inline]
    pub fn record(&self, m: &mut Metrics, v: f64) {
        let id = match self.id.get() {
            Some(id) => id,
            None => {
                let id = m.register_sample(self.key);
                self.id.set(Some(id));
                id
            }
        };
        m.record_to(id, v);
    }

    /// Records a duration observation in milliseconds.
    #[inline]
    pub fn record_duration(&self, m: &mut Metrics, d: SimDuration) {
        self.record(m, d.as_millis_f64());
    }
}

/// A gauge handle that resolves its key on first use.
///
/// See [`LazyCounter`] for the usage pattern and the [`Metrics`] docs
/// for gauge visibility semantics.
#[derive(Debug)]
pub struct LazyGauge {
    key: &'static str,
    id: Cell<Option<GaugeId>>,
}

impl LazyGauge {
    /// Creates an unresolved handle for `key`.
    pub const fn new(key: &'static str) -> Self {
        LazyGauge {
            key,
            id: Cell::new(None),
        }
    }

    #[inline]
    fn id(&self, m: &mut Metrics) -> GaugeId {
        match self.id.get() {
            Some(id) => id,
            None => {
                let id = m.register_gauge(self.key);
                self.id.set(Some(id));
                id
            }
        }
    }

    /// Sets the gauge to `v`.
    #[inline]
    pub fn set(&self, m: &mut Metrics, v: f64) {
        let id = self.id(m);
        m.set_to(id, v);
    }

    /// Adds `dv` (may be negative) to the gauge.
    #[inline]
    pub fn add(&self, m: &mut Metrics, dv: f64) {
        let id = self.id(m);
        m.gauge_add_to(id, dv);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut m = Metrics::new();
        m.incr("ops");
        m.add("ops", 4.0);
        assert_eq!(m.counter("ops"), 5.0);
        assert_eq!(m.counter("absent"), 0.0);
    }

    #[test]
    fn samples_stats() {
        let mut s = Samples::default();
        for v in [1.0, 2.0, 3.0, 4.0] {
            s.record(v);
        }
        assert_eq!(s.count(), 4);
        assert_eq!(s.mean(), 2.5);
        assert_eq!(s.quantile(0.0), 1.0);
        assert_eq!(s.quantile(1.0), 4.0);
        assert_eq!(s.max(), 4.0);
    }

    #[test]
    fn quantile_cache_sees_new_samples() {
        let mut s = Samples::default();
        s.record(1.0);
        assert_eq!(s.quantile(1.0), 1.0);
        s.record(5.0); // invalidates the sorted cache
        assert_eq!(s.quantile(1.0), 5.0);
        assert_eq!(s.quantile(0.0), 1.0);
        // unsorted insertion order is preserved for values()
        s.record(3.0);
        assert_eq!(s.values(), &[1.0, 5.0, 3.0]);
        assert_eq!(s.quantile(0.5), 3.0);
    }

    #[test]
    fn empty_samples_are_zero() {
        let s = Samples::default();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.quantile(0.5), 0.0);
    }

    #[test]
    fn rate_per_sec() {
        let mut m = Metrics::new();
        m.add("bytes", 1e9);
        let r = m.rate_per_sec(
            "bytes",
            SimTime::ZERO,
            SimTime::ZERO + SimDuration::from_secs(2),
        );
        assert_eq!(r, 5e8);
    }

    #[test]
    fn duration_samples_in_ms() {
        let mut m = Metrics::new();
        m.sample_duration("lat", SimDuration::from_micros(1500));
        assert!((m.mean("lat") - 1.5).abs() < 1e-9);
    }

    #[test]
    fn interned_ids_match_string_api() {
        let mut m = Metrics::new();
        let c = m.register_counter("ops");
        let s = m.register_sample("lat");
        m.incr_to(c);
        m.add("ops", 2.0); // string API hits the same slot
        m.record_to(s, 7.0);
        assert_eq!(m.counter("ops"), 3.0);
        assert_eq!(m.counter_value(c), 3.0);
        assert_eq!(m.samples("lat").unwrap().values(), &[7.0]);
        assert_eq!(m.register_counter("ops"), c, "interning is idempotent");
    }

    #[test]
    fn reset_keeps_ids_but_hides_untouched_keys() {
        let mut m = Metrics::new();
        let c = m.register_counter("ops");
        m.incr_to(c);
        m.sample("lat", 1.0);
        assert_eq!(m.counter_keys().collect::<Vec<_>>(), vec!["ops"]);
        assert_eq!(m.sample_keys().collect::<Vec<_>>(), vec!["lat"]);
        m.reset();
        assert_eq!(m.counter("ops"), 0.0);
        assert_eq!(m.counter_keys().count(), 0, "untouched keys hidden");
        assert_eq!(m.sample_keys().count(), 0);
        assert!(m.samples("lat").is_none(), "empty sample set reads absent");
        m.incr_to(c); // id survives the reset
        assert_eq!(m.counter("ops"), 1.0);
        assert_eq!(m.counter_keys().collect::<Vec<_>>(), vec!["ops"]);
    }

    #[test]
    fn single_sample_serves_every_quantile() {
        let mut s = Samples::default();
        s.record(7.5);
        assert_eq!(s.quantile(0.0), 7.5);
        assert_eq!(s.p50(), 7.5);
        assert_eq!(s.p99(), 7.5);
        assert_eq!(s.p999(), 7.5);
        assert_eq!(s.quantile(1.0), 7.5);
    }

    #[test]
    fn p999_picks_the_tail() {
        let mut s = Samples::default();
        for i in 0..1000 {
            s.record(f64::from(i));
        }
        assert_eq!(s.p50(), 500.0); // nearest-rank on 0..=999
        assert_eq!(s.p99(), 989.0);
        assert_eq!(s.p999(), 998.0);
    }

    #[test]
    fn nan_samples_sort_last_not_panic() {
        let mut s = Samples::default();
        s.record(1.0);
        s.record(f64::NAN);
        s.record(3.0);
        // total_cmp puts NaN above +inf: finite quantiles stay usable.
        assert_eq!(s.quantile(0.0), 1.0);
        assert_eq!(s.p50(), 3.0);
        assert!(s.quantile(1.0).is_nan());
    }

    #[test]
    fn gauges_hold_last_value_and_reset() {
        let mut m = Metrics::new();
        let g = m.register_gauge("inflight");
        assert_eq!(m.gauges().count(), 0, "registered-but-unwritten hidden");
        m.set_to(g, 4.0);
        m.gauge_add_to(g, -1.0);
        m.gauge_add("inflight", -1.0); // string API hits the same slot
        assert_eq!(m.gauge("inflight"), 2.0);
        assert_eq!(m.gauge_value(g), 2.0);
        assert_eq!(m.gauges().collect::<Vec<_>>(), vec![("inflight", 2.0)]);
        m.reset();
        assert_eq!(m.gauge("inflight"), 0.0, "last-value cleared by reset");
        assert_eq!(m.gauges().count(), 0, "untouched gauges hidden");
        m.set_gauge("inflight", 9.0); // id survives the reset
        assert_eq!(m.gauge_value(g), 9.0);
    }

    #[test]
    fn lazy_gauge_resolves_once() {
        let mut m = Metrics::new();
        let g = LazyGauge::new("ring_bytes");
        g.add(&mut m, 4096.0);
        g.add(&mut m, -4096.0);
        g.set(&mut m, 512.0);
        assert_eq!(m.gauge("ring_bytes"), 512.0);
        assert_eq!(m.gauges().collect::<Vec<_>>(), vec![("ring_bytes", 512.0)]);
    }

    #[test]
    fn lazy_handles_resolve_once() {
        let mut m = Metrics::new();
        let c = LazyCounter::new("hot_ops");
        let s = LazySamples::new("hot_lat");
        for _ in 0..3 {
            c.incr(&mut m);
            s.record(&mut m, 2.0);
        }
        c.add(&mut m, 4.0);
        s.record_duration(&mut m, SimDuration::from_micros(500));
        assert_eq!(m.counter("hot_ops"), 7.0);
        assert_eq!(m.samples("hot_lat").unwrap().count(), 4);
        assert!((m.samples("hot_lat").unwrap().values()[3] - 0.5).abs() < 1e-9);
    }
}

//! Lightweight metrics: counters, gauges and sample distributions.
//!
//! Workload actors record observations (transaction latencies, bytes read,
//! completed operations) under string keys; experiment harnesses read them
//! back after the run.

use std::collections::BTreeMap;

use crate::time::{SimDuration, SimTime};

/// A set of recorded samples with order statistics.
#[derive(Debug, Clone, Default)]
pub struct Samples {
    values: Vec<f64>,
}

impl Samples {
    /// Records one observation.
    pub fn record(&mut self, v: f64) {
        self.values.push(v);
    }

    /// Number of observations.
    pub fn count(&self) -> usize {
        self.values.len()
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        self.values.iter().sum()
    }

    /// Arithmetic mean, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            0.0
        } else {
            self.sum() / self.values.len() as f64
        }
    }

    /// The `q`-quantile (0 ≤ q ≤ 1) by nearest-rank, or 0.0 when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        let mut v = self.values.clone();
        v.sort_by(|a, b| a.partial_cmp(b).expect("NaN sample"));
        let idx = ((v.len() as f64 - 1.0) * q.clamp(0.0, 1.0)).round() as usize;
        v[idx]
    }

    /// Largest observation, or 0.0 when empty.
    pub fn max(&self) -> f64 {
        self.values.iter().cloned().fold(0.0, f64::max)
    }

    /// Raw observations in insertion order.
    pub fn values(&self) -> &[f64] {
        &self.values
    }
}

/// The world's metrics registry.
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    counters: BTreeMap<String, f64>,
    samples: BTreeMap<String, Samples>,
}

impl Metrics {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `v` to counter `key` (creating it at 0).
    pub fn add(&mut self, key: &str, v: f64) {
        *self.counters.entry(key.to_owned()).or_insert(0.0) += v;
    }

    /// Increments counter `key` by 1.
    pub fn incr(&mut self, key: &str) {
        self.add(key, 1.0);
    }

    /// Current value of counter `key` (0 when absent).
    pub fn counter(&self, key: &str) -> f64 {
        self.counters.get(key).copied().unwrap_or(0.0)
    }

    /// Records a raw sample under `key`.
    pub fn sample(&mut self, key: &str, v: f64) {
        self.samples.entry(key.to_owned()).or_default().record(v);
    }

    /// Records a duration sample (stored in milliseconds) under `key`.
    pub fn sample_duration(&mut self, key: &str, d: SimDuration) {
        self.sample(key, d.as_millis_f64());
    }

    /// The sample set under `key`, if any samples were recorded.
    pub fn samples(&self, key: &str) -> Option<&Samples> {
        self.samples.get(key)
    }

    /// Mean of samples under `key` (0.0 when absent).
    pub fn mean(&self, key: &str) -> f64 {
        self.samples.get(key).map_or(0.0, Samples::mean)
    }

    /// All counter keys (sorted).
    pub fn counter_keys(&self) -> impl Iterator<Item = &str> {
        self.counters.keys().map(String::as_str)
    }

    /// All sample keys (sorted).
    pub fn sample_keys(&self) -> impl Iterator<Item = &str> {
        self.samples.keys().map(String::as_str)
    }

    /// Throughput helper: counter `key` divided by elapsed seconds.
    pub fn rate_per_sec(&self, key: &str, start: SimTime, end: SimTime) -> f64 {
        let secs = end.since(start).as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.counter(key) / secs
        }
    }

    /// Clears everything (used between warm-up and measurement phases).
    pub fn reset(&mut self) {
        self.counters.clear();
        self.samples.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut m = Metrics::new();
        m.incr("ops");
        m.add("ops", 4.0);
        assert_eq!(m.counter("ops"), 5.0);
        assert_eq!(m.counter("absent"), 0.0);
    }

    #[test]
    fn samples_stats() {
        let mut s = Samples::default();
        for v in [1.0, 2.0, 3.0, 4.0] {
            s.record(v);
        }
        assert_eq!(s.count(), 4);
        assert_eq!(s.mean(), 2.5);
        assert_eq!(s.quantile(0.0), 1.0);
        assert_eq!(s.quantile(1.0), 4.0);
        assert_eq!(s.max(), 4.0);
    }

    #[test]
    fn empty_samples_are_zero() {
        let s = Samples::default();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.quantile(0.5), 0.0);
    }

    #[test]
    fn rate_per_sec() {
        let mut m = Metrics::new();
        m.add("bytes", 1e9);
        let r = m.rate_per_sec(
            "bytes",
            SimTime::ZERO,
            SimTime::ZERO + SimDuration::from_secs(2),
        );
        assert_eq!(r, 5e8);
    }

    #[test]
    fn duration_samples_in_ms() {
        let mut m = Metrics::new();
        m.sample_duration("lat", SimDuration::from_micros(1500));
        assert!((m.mean("lat") - 1.5).abs() < 1e-9);
    }
}

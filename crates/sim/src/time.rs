//! Simulated time: nanosecond-resolution instants and durations.
//!
//! All timestamps in the simulation are [`SimTime`] (nanoseconds since the
//! start of the run) and all spans are [`SimDuration`]. Both are thin
//! newtypes over `u64` so arithmetic is exact and deterministic.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant in simulated time, measured in nanoseconds from the start of
/// the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant (used as an "infinitely far" sentinel).
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant `ns` nanoseconds after the start of the run.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Nanoseconds since the start of the run.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since the start of the run, as a float (for reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The duration since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `earlier` is later than `self`.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        debug_assert!(earlier.0 <= self.0, "time went backwards");
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Saturating subtraction of a duration.
    pub fn saturating_sub(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(d.0))
    }

    /// The later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// The earlier of two instants.
    pub fn min(self, other: SimTime) -> SimTime {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration of `ns` nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Creates a duration of `us` microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Creates a duration of `ms` milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Creates a duration of `s` seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Creates a duration from fractional seconds, rounding to whole
    /// nanoseconds (negative inputs clamp to zero).
    pub fn from_secs_f64(s: f64) -> Self {
        SimDuration((s.max(0.0) * 1e9).round() as u64)
    }

    /// Length in nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Length in fractional seconds (for reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Length in fractional milliseconds (for reporting).
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The larger of two durations.
    pub fn max(self, other: SimDuration) -> SimDuration {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// The smaller of two durations.
    pub fn min(self, other: SimDuration) -> SimDuration {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }

    /// Clamp `self` into `[lo, hi]`.
    pub fn clamp(self, lo: SimDuration, hi: SimDuration) -> SimDuration {
        self.max(lo).min(hi)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0 + d.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, d: SimDuration) {
        self.0 += d.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, d: SimDuration) -> SimTime {
        SimTime(self.0 - d.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, t: SimTime) -> SimDuration {
        SimDuration(self.0 - t.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, d: SimDuration) -> SimDuration {
        SimDuration(self.0 + d.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, d: SimDuration) {
        self.0 += d.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, d: SimDuration) -> SimDuration {
        SimDuration(self.0 - d.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, d: SimDuration) {
        self.0 -= d.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, k: u64) -> SimDuration {
        SimDuration(self.0 * k)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, k: u64) -> SimDuration {
        SimDuration(self.0 / k)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", ns as f64 / 1e6)
        } else if ns >= 1_000 {
            write!(f, "{:.3}us", ns as f64 / 1e3)
        } else {
            write!(f, "{ns}ns")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_roundtrips() {
        let t = SimTime::from_nanos(5_000);
        let d = SimDuration::from_micros(3);
        assert_eq!((t + d).as_nanos(), 8_000);
        assert_eq!((t + d) - t, d);
        assert_eq!((t + d).since(t), d);
    }

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(SimDuration::from_millis(2), SimDuration::from_micros(2_000));
        assert_eq!(SimDuration::from_secs(1), SimDuration::from_millis(1_000));
        assert_eq!(
            SimDuration::from_secs_f64(0.5),
            SimDuration::from_millis(500)
        );
    }

    #[test]
    fn clamp_and_minmax() {
        let lo = SimDuration::from_micros(10);
        let hi = SimDuration::from_micros(100);
        assert_eq!(SimDuration::from_micros(5).clamp(lo, hi), lo);
        assert_eq!(SimDuration::from_micros(500).clamp(lo, hi), hi);
        assert_eq!(
            SimDuration::from_micros(50).clamp(lo, hi).as_nanos(),
            50_000
        );
        assert_eq!(
            SimTime::from_nanos(3)
                .max(SimTime::from_nanos(7))
                .as_nanos(),
            7
        );
    }

    #[test]
    fn saturating_behaviour() {
        let t = SimTime::from_nanos(10);
        assert_eq!(t.saturating_sub(SimDuration::from_nanos(20)), SimTime::ZERO);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", SimDuration::from_nanos(5)), "5ns");
        assert_eq!(format!("{}", SimDuration::from_micros(5)), "5.000us");
        assert_eq!(format!("{}", SimDuration::from_millis(5)), "5.000ms");
        assert_eq!(format!("{}", SimDuration::from_secs(5)), "5.000s");
    }
}

//! Typed extension blackboard.
//!
//! Higher layers (the virtualization substrate, HDFS, vRead) need shared
//! mutable state that several actors consult synchronously — page caches,
//! guest filesystems, mount tables. Making each of those an actor would
//! force an asynchronous round-trip for what is logically a function call,
//! so instead the world carries a type-indexed map: each crate stores its
//! own state struct and retrieves it by type.

use std::any::{Any, TypeId};
use std::collections::HashMap;

/// A type-indexed map of singleton extension states.
#[derive(Default)]
pub struct Extensions {
    map: HashMap<TypeId, Box<dyn Any>>,
}

impl std::fmt::Debug for Extensions {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Extensions({} entries)", self.map.len())
    }
}

impl Extensions {
    /// Creates an empty blackboard.
    pub fn new() -> Self {
        Self::default()
    }

    /// Stores `value`, replacing and returning any previous value of the
    /// same type.
    pub fn insert<T: 'static>(&mut self, value: T) -> Option<T> {
        self.map
            .insert(TypeId::of::<T>(), Box::new(value))
            .map(|old| *old.downcast::<T>().expect("typeid collision"))
    }

    /// Shared access to the stored `T`, if present.
    pub fn get<T: 'static>(&self) -> Option<&T> {
        self.map
            .get(&TypeId::of::<T>())
            .map(|b| b.downcast_ref::<T>().expect("typeid collision"))
    }

    /// Exclusive access to the stored `T`, if present.
    pub fn get_mut<T: 'static>(&mut self) -> Option<&mut T> {
        self.map
            .get_mut(&TypeId::of::<T>())
            .map(|b| b.downcast_mut::<T>().expect("typeid collision"))
    }

    /// Exclusive access to the stored `T`, inserting `T::default()` first
    /// if absent.
    pub fn get_or_default<T: 'static + Default>(&mut self) -> &mut T {
        self.map
            .entry(TypeId::of::<T>())
            .or_insert_with(|| Box::new(T::default()))
            .downcast_mut::<T>()
            .expect("typeid collision")
    }

    /// Removes and returns the stored `T`.
    pub fn remove<T: 'static>(&mut self) -> Option<T> {
        self.map
            .remove(&TypeId::of::<T>())
            .map(|b| *b.downcast::<T>().expect("typeid collision"))
    }

    /// Number of stored extension states.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Default, Debug, PartialEq)]
    struct CacheState {
        hits: u32,
    }

    #[test]
    fn insert_get_mutate() {
        let mut e = Extensions::new();
        assert!(e.get::<CacheState>().is_none());
        e.insert(CacheState { hits: 1 });
        e.get_mut::<CacheState>().unwrap().hits += 1;
        assert_eq!(e.get::<CacheState>().unwrap().hits, 2);
    }

    #[test]
    fn get_or_default_inserts() {
        let mut e = Extensions::new();
        e.get_or_default::<CacheState>().hits = 5;
        assert_eq!(e.get::<CacheState>().unwrap().hits, 5);
        assert_eq!(e.len(), 1);
    }

    #[test]
    fn replace_returns_old() {
        let mut e = Extensions::new();
        assert_eq!(e.insert(CacheState { hits: 1 }), None);
        let old = e.insert(CacheState { hits: 9 });
        assert_eq!(old, Some(CacheState { hits: 1 }));
        assert_eq!(e.remove::<CacheState>(), Some(CacheState { hits: 9 }));
        assert!(e.is_empty());
    }
}

//! Deterministic fault injection: a clock-driven scheduler that fires
//! pre-planned fault actions against the running world.
//!
//! The paper's reliability argument (§3.5) is that vRead *degrades rather
//! than breaks*: a dead daemon or a stalled transport makes reads fall
//! back to the vanilla path, and recovery re-establishes the fast path.
//! Exercising that requires injecting failures at exact simulated
//! instants, repeatably. This module provides the substrate:
//!
//! * [`FaultAction`] — one fault, applied against the world. Actions are
//!   defined next to the subsystem they break (`vread-net` degrades
//!   links, `vread-core` crashes daemons, …); the two actions here
//!   ([`StallThread`], [`SlowDisk`]) only touch engine-level resources.
//! * [`FaultScheduler`] — an actor that owns the planned actions and
//!   fires each at its timestamp via ordinary timers, so fault runs obey
//!   the same deterministic event order as everything else.
//! * [`FaultTrace`] — an extension-blackboard marker present only in
//!   fault runs. Data-path actors consult it to decide whether to record
//!   degradation samples, which keeps no-fault runs bit-identical to a
//!   build without this module.
//!
//! An action may return a follow-up (e.g. *restore bandwidth after the
//! flap window*), which the scheduler re-arms relative to the fire time —
//! transient faults are therefore a single plan entry.

use crate::cpu::CpuCategory;
use crate::engine::{Actor, Ctx, World};
use crate::ids::{ActorId, BlockDevId, ThreadId};
use crate::msg::{downcast, BoxMsg};
use crate::time::{SimDuration, SimTime};

/// One injectable fault. Implementations mutate the world (remove an
/// actor, degrade a resource, drop a cache …) when applied.
pub trait FaultAction: 'static {
    /// Short stable label for metrics/trace output (e.g. `"daemon-crash"`).
    fn label(&self) -> &'static str;

    /// Applies the fault at the current simulated time. Returning
    /// `Some((delay, action))` schedules `action` to fire `delay` later
    /// (typically the matching *restore*).
    fn apply(self: Box<Self>, ctx: &mut Ctx<'_>) -> Option<(SimDuration, Box<dyn FaultAction>)>;
}

/// Marker (plus observation window) present in `World::ext` only when a
/// fault plan is armed. Data-path code gates degradation-tracking samples
/// on it so that no-fault runs stay byte-identical.
#[derive(Debug, Clone, Copy)]
pub struct FaultTrace {
    /// Earliest planned fault instant.
    pub window_start: SimTime,
    /// Latest planned fault instant (plus any known restore delay).
    pub window_end: SimTime,
}

impl FaultTrace {
    /// Whether `t` falls inside the fault window (inclusive).
    pub fn contains(&self, t: SimTime) -> bool {
        t >= self.window_start && t <= self.window_end
    }
}

/// Internal timer message: fire the action stored in slot `.0`.
struct Fire(usize);

/// Completion message for [`StallThread`]'s CPU burst (ignored).
struct StallDone;

/// The actor driving a fault plan. Owns the planned actions; each fires
/// exactly once at its timestamp.
pub struct FaultScheduler {
    slots: Vec<Option<Box<dyn FaultAction>>>,
}

impl Actor for FaultScheduler {
    fn handle(&mut self, msg: BoxMsg, ctx: &mut Ctx<'_>) {
        let msg = match downcast::<Fire>(msg) {
            Ok(f) => {
                let action = self.slots[f.0].take().expect("fault slot fired twice");
                ctx.metrics().incr(action.label());
                ctx.metrics().incr("fault_events");
                let label = action.label();
                let now = ctx.now();
                ctx.world.spans.mark(label, now);
                let at = ctx.now().as_secs_f64();
                ctx.metrics().sample("fault_at_s", at);
                if let Some((delay, follow)) = action.apply(ctx) {
                    let slot = self.slots.len();
                    self.slots.push(Some(follow));
                    ctx.timer(Fire(slot), delay);
                }
                return;
            }
            Err(m) => m,
        };
        // CPU-burst completions from StallThread land here; nothing to do.
        let _ = downcast::<StallDone>(msg);
    }
}

/// Arms `plan` (pairs of *fire time* and action; times may be unsorted)
/// and installs the [`FaultTrace`] marker. Times earlier than `w.now()`
/// fire immediately. Returns the scheduler's actor id.
pub fn schedule_faults(w: &mut World, plan: Vec<(SimTime, Box<dyn FaultAction>)>) -> ActorId {
    let start = plan.iter().map(|(t, _)| *t).min().unwrap_or(SimTime::ZERO);
    let end = plan.iter().map(|(t, _)| *t).max().unwrap_or(SimTime::ZERO);
    w.ext.insert(FaultTrace {
        window_start: start,
        window_end: end,
    });
    let mut slots = Vec::with_capacity(plan.len());
    let mut at = Vec::with_capacity(plan.len());
    for (t, action) in plan {
        at.push(t);
        slots.push(Some(action));
    }
    let sched = w.add_actor("fault-sched", FaultScheduler { slots });
    let now = w.now();
    for (i, t) in at.into_iter().enumerate() {
        let delay = if t > now { t - now } else { SimDuration::ZERO };
        w.send_after(sched, Fire(i), delay);
    }
    sched
}

// -- engine-level actions ---------------------------------------------------

/// Monopolizes a thread for `duration` with a synthetic CPU burst — the
/// paper's vhost-thread-stall / noisy-neighbour fault. Every chain stage
/// queued on the thread waits behind the burst (modulo fair-share
/// scheduling against other threads on the core).
pub struct StallThread {
    /// Thread to stall.
    pub thread: ThreadId,
    /// Stall length (converted to cycles at the host's clock rate).
    pub duration: SimDuration,
}

impl FaultAction for StallThread {
    fn label(&self) -> &'static str {
        "fault_thread_stall"
    }

    fn apply(self: Box<Self>, ctx: &mut Ctx<'_>) -> Option<(SimDuration, Box<dyn FaultAction>)> {
        let host = ctx.world.thread_host(self.thread);
        let ghz = ctx.world.host_ghz(host);
        let cycles = (self.duration.as_secs_f64() * ghz * 1e9).round() as u64;
        let me = ctx.me();
        ctx.cpu(self.thread, cycles, CpuCategory::Other, me, StallDone);
        None
    }
}

/// Divides a block device's bandwidth by `factor` for `duration`, then
/// restores it (the paper's disk-slowdown ×k fault). The factor is
/// bounded by the caller's plan validation; with free-at queueing an
/// extreme factor would push completions absurdly far out rather than
/// dropping requests.
pub struct SlowDisk {
    /// Device to degrade.
    pub dev: BlockDevId,
    /// Bandwidth divisor (> 1).
    pub factor: f64,
    /// How long the slowdown lasts.
    pub duration: SimDuration,
}

impl FaultAction for SlowDisk {
    fn label(&self) -> &'static str {
        "fault_disk_slow"
    }

    fn apply(self: Box<Self>, ctx: &mut Ctx<'_>) -> Option<(SimDuration, Box<dyn FaultAction>)> {
        let dev = ctx.world.blockdev_mut(self.dev);
        let saved = dev.bandwidth_bps;
        dev.bandwidth_bps = saved / self.factor.max(1.0);
        Some((
            self.duration,
            Box::new(RestoreDisk {
                dev: self.dev,
                bandwidth_bps: saved,
            }),
        ))
    }
}

/// Follow-up to [`SlowDisk`]: put the saved bandwidth back.
struct RestoreDisk {
    dev: BlockDevId,
    bandwidth_bps: f64,
}

impl FaultAction for RestoreDisk {
    fn label(&self) -> &'static str {
        "fault_disk_restore"
    }

    fn apply(self: Box<Self>, ctx: &mut Ctx<'_>) -> Option<(SimDuration, Box<dyn FaultAction>)> {
        ctx.world.blockdev_mut(self.dev).bandwidth_bps = self.bandwidth_bps;
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Probe {
        fired: std::rc::Rc<std::cell::RefCell<Vec<(f64, &'static str)>>>,
        label: &'static str,
        restore_after: Option<SimDuration>,
    }

    impl FaultAction for Probe {
        fn label(&self) -> &'static str {
            self.label
        }

        fn apply(
            self: Box<Self>,
            ctx: &mut Ctx<'_>,
        ) -> Option<(SimDuration, Box<dyn FaultAction>)> {
            self.fired
                .borrow_mut()
                .push((ctx.now().as_secs_f64(), self.label));
            self.restore_after.map(|d| {
                (
                    d,
                    Box::new(Probe {
                        fired: self.fired.clone(),
                        label: "restore",
                        restore_after: None,
                    }) as Box<dyn FaultAction>,
                )
            })
        }
    }

    #[test]
    fn actions_fire_at_planned_times_with_followups() {
        let mut w = World::new(7);
        let fired = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        let plan: Vec<(SimTime, Box<dyn FaultAction>)> = vec![
            (
                SimTime::ZERO + SimDuration::from_millis(200),
                Box::new(Probe {
                    fired: fired.clone(),
                    label: "b",
                    restore_after: None,
                }),
            ),
            (
                SimTime::ZERO + SimDuration::from_millis(100),
                Box::new(Probe {
                    fired: fired.clone(),
                    label: "a",
                    restore_after: Some(SimDuration::from_millis(300)),
                }),
            ),
        ];
        schedule_faults(&mut w, plan);
        let trace = *w.ext.get::<FaultTrace>().unwrap();
        assert_eq!(trace.window_start.as_secs_f64(), 0.1);
        assert_eq!(trace.window_end.as_secs_f64(), 0.2);
        w.run();
        assert_eq!(
            *fired.borrow(),
            vec![(0.1, "a"), (0.2, "b"), (0.4, "restore")]
        );
        assert_eq!(w.metrics.counter("fault_events"), 3.0);
    }

    #[test]
    fn slow_disk_restores_bandwidth() {
        let mut w = World::new(7);
        let dev = w.add_blockdev(crate::resources::BlockDev::new(
            SimDuration::from_micros(80),
            300e6,
        ));
        schedule_faults(
            &mut w,
            vec![(
                SimTime::ZERO + SimDuration::from_millis(10),
                Box::new(SlowDisk {
                    dev,
                    factor: 10.0,
                    duration: SimDuration::from_millis(50),
                }) as Box<dyn FaultAction>,
            )],
        );
        w.run_until(SimTime::ZERO + SimDuration::from_millis(20));
        assert_eq!(w.blockdev(dev).bandwidth_bps, 30e6);
        w.run();
        assert_eq!(w.blockdev(dev).bandwidth_bps, 300e6);
    }
}

//! # vread-sim — deterministic discrete-event simulation engine
//!
//! This crate is the substrate on which the whole vRead reproduction runs.
//! It provides:
//!
//! * a **discrete-event core** ([`World`]) with nanosecond [`SimTime`],
//!   deterministic event ordering, and an actor model in which components
//!   communicate exclusively through messages ([`Actor`], [`Ctx`]);
//! * a **CFS-like fair CPU scheduler** ([`sched`]) — threads (vCPUs, vhost
//!   I/O threads, hypervisor daemons …) are schedulable entities on the
//!   cores of simulated hosts; queueing and wake-up preemption delays
//!   *emerge* from the schedule rather than being parameterised;
//! * **CPU chains** ([`Stage`]) — a sequence of cycle-costed steps spread
//!   across threads, link serialization, disk service and pure delays; the
//!   building block for modelling multi-hop I/O paths (virtio, vhost-net,
//!   RDMA, the vRead ring);
//! * **cycle accounting** ([`cpu::CpuAccounting`]) per `(thread, category)`,
//!   mirroring the CPU-breakdown legends of the paper's Figures 6–8;
//! * lightweight deterministic [`rng`], [`metrics`] and a typed
//!   extension blackboard ([`ext::Extensions`]) for shared hardware state
//!   (page caches, filesystems) owned by higher layers.
//!
//! # Example
//!
//! ```rust
//! use vread_sim::prelude::*;
//!
//! struct Ping { peer: Option<ActorId>, thread: ThreadId, left: u32 }
//! impl Actor for Ping {
//!     fn handle(&mut self, msg: BoxMsg, ctx: &mut Ctx<'_>) {
//!         if msg.is::<Start>() || msg.is::<u32>() {
//!             if self.left == 0 { return; }
//!             self.left -= 1;
//!             let peer = self.peer.unwrap_or(ctx.me());
//!             // burn 10k cycles, then notify the peer
//!             ctx.cpu(self.thread, 10_000, CpuCategory::Other, peer, self.left);
//!         }
//!     }
//! }
//!
//! let mut w = World::new(42);
//! let h = w.add_host("host0", 4, 3.2);
//! let t = w.add_thread(h, "ping");
//! let a = w.add_actor("ping", Ping { peer: None, thread: t, left: 8 });
//! w.send_now(a, Start);
//! w.run();
//! assert!(w.now() > SimTime::ZERO);
//! ```

#![forbid(unsafe_code)]

pub mod chain;
pub mod cpu;
pub mod engine;
pub mod ext;
pub mod fault;
pub mod ids;
pub mod job;
pub mod metrics;
pub mod msg;
pub mod par;
pub mod resources;
pub mod rng;
pub mod sched;
mod slab;
pub mod span;
pub mod time;
pub mod timeline;
pub mod trace;

pub use chain::{Stage, StageList};
pub use cpu::{CpuAccounting, CpuCategory};
pub use engine::{Actor, Ctx, World};
pub use fault::{schedule_faults, FaultAction, FaultScheduler, FaultTrace, SlowDisk, StallThread};
pub use ids::{ActorId, BlockDevId, ChainId, CoreId, HostId, LinkId, ShardId, ThreadId};
pub use job::{JobHandle, Jobs};
pub use metrics::{
    CounterId, GaugeId, LazyCounter, LazyGauge, LazySamples, Metrics, SampleId, Samples,
};
pub use msg::{downcast, BoxMsg, Start};
pub use par::{run_indexed, run_indexed_streamed, run_sharded, EngineOpts, Shard};
pub use rng::SimRng;
pub use sched::SchedParams;
pub use span::{Span, SpanId, SpanMark, SpanRecorder, SpanReport};
pub use time::{SimDuration, SimTime};
pub use timeline::{Hist, Timeline};
pub use trace::{TraceDetail, TraceKind, TraceRef, Tracer};

/// Convenience re-exports for downstream crates and examples.
pub mod prelude {
    pub use crate::chain::{Stage, StageList};
    pub use crate::cpu::{CpuAccounting, CpuCategory};
    pub use crate::engine::{Actor, Ctx, World};
    pub use crate::fault::{schedule_faults, FaultAction, FaultTrace};
    pub use crate::ids::{ActorId, BlockDevId, ChainId, CoreId, HostId, LinkId, ShardId, ThreadId};
    pub use crate::job::JobHandle;
    pub use crate::metrics::{CounterId, GaugeId, LazyCounter, LazyGauge, LazySamples, SampleId};
    pub use crate::msg::{downcast, BoxMsg, Start};
    pub use crate::par::{run_indexed, run_indexed_streamed, run_sharded, EngineOpts, Shard};
    pub use crate::rng::SimRng;
    pub use crate::sched::SchedParams;
    pub use crate::span::{SpanId, SpanRecorder};
    pub use crate::time::{SimDuration, SimTime};
}

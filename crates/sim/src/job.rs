//! Event-driven job completion — the drive layer's primitive.
//!
//! A *job* is a unit of harness-visible work (a DFSIO run, a reader
//! pass, one netperf measurement window). The harness registers a job
//! up front ([`crate::engine::World::register_job`]), hands the returned
//! [`JobHandle`] to the workload actor, and the actor signals lifecycle
//! points through its [`crate::engine::Ctx`] (`job_started`,
//! `job_progress`, `job_completed`). The engine then runs *until the
//! completion event itself* via
//! [`crate::engine::World::run_jobs_for`] — no time-slice polling, so
//! elapsed-time measurements carry no polling-granularity error and the
//! stop instant is exactly the completing event's timestamp.
//!
//! Handles are plain indices into a table owned by the `World`; jobs are
//! never deregistered, so a handle stays valid for the life of its
//! world.

use crate::time::{SimDuration, SimTime};

/// Completion token for one registered job. `Copy`, cheap to thread
/// through actors; signals go through [`crate::engine::Ctx`] helpers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct JobHandle(u32);

impl JobHandle {
    /// The slot index inside the world's job table.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

#[derive(Debug, Clone)]
struct JobSlot {
    label: String,
    started_at: Option<SimTime>,
    completed_at: Option<SimTime>,
    bytes: u64,
    ops: u64,
}

/// The world's job table: per-job start/completion timestamps and
/// progress totals, plus the count of still-pending jobs the engine's
/// job-driven run loop waits on.
#[derive(Debug, Default)]
pub struct Jobs {
    slots: Vec<JobSlot>,
    pending: usize,
}

impl Jobs {
    /// Registers a new pending job; `label` is for diagnostics.
    pub fn register(&mut self, label: &str) -> JobHandle {
        let ix = u32::try_from(self.slots.len()).expect("job table overflow");
        self.slots.push(JobSlot {
            label: label.to_owned(),
            started_at: None,
            completed_at: None,
            bytes: 0,
            ops: 0,
        });
        self.pending += 1;
        JobHandle(ix)
    }

    /// Number of registered-but-not-yet-completed jobs.
    pub fn pending(&self) -> usize {
        self.pending
    }

    /// Number of registered jobs.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// `true` when no job has been registered.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Marks the job started at `now` (first call wins).
    pub fn start(&mut self, h: JobHandle, now: SimTime) {
        let s = &mut self.slots[h.index()];
        if s.started_at.is_none() {
            s.started_at = Some(now);
        }
    }

    /// Marks the job completed at `now` (idempotent; the first call
    /// decrements the pending count).
    pub fn complete(&mut self, h: JobHandle, now: SimTime) {
        let s = &mut self.slots[h.index()];
        if s.completed_at.is_none() {
            s.completed_at = Some(now);
            self.pending -= 1;
        }
    }

    /// Adds `bytes` / `ops` to the job's progress totals.
    pub fn progress(&mut self, h: JobHandle, bytes: u64, ops: u64) {
        let s = &mut self.slots[h.index()];
        s.bytes += bytes;
        s.ops += ops;
    }

    /// Diagnostic label given at registration.
    pub fn label(&self, h: JobHandle) -> &str {
        &self.slots[h.index()].label
    }

    /// When the job signalled its start, if it has.
    pub fn started_at(&self, h: JobHandle) -> Option<SimTime> {
        self.slots[h.index()].started_at
    }

    /// When the job completed, if it has.
    pub fn completed_at(&self, h: JobHandle) -> Option<SimTime> {
        self.slots[h.index()].completed_at
    }

    /// `true` once the job has completed.
    pub fn is_complete(&self, h: JobHandle) -> bool {
        self.slots[h.index()].completed_at.is_some()
    }

    /// Bytes of payload the job reported via progress signals.
    pub fn bytes(&self, h: JobHandle) -> u64 {
        self.slots[h.index()].bytes
    }

    /// Operations (requests, transactions) the job reported.
    pub fn ops(&self, h: JobHandle) -> u64 {
        self.slots[h.index()].ops
    }

    /// Start-to-completion duration, once both ends are recorded.
    pub fn elapsed(&self, h: JobHandle) -> Option<SimDuration> {
        let s = &self.slots[h.index()];
        match (s.started_at, s.completed_at) {
            (Some(a), Some(b)) => Some(b.since(a)),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Actor, Ctx, World};
    use crate::msg::{BoxMsg, Start};

    /// Ticks forever on a 1 ms timer; completes its job after `left`
    /// ticks (if it has one) but keeps ticking — like a scenario whose
    /// background load never drains the event queue.
    struct Ticker {
        job: Option<JobHandle>,
        left: u32,
    }
    struct Tick;
    impl Actor for Ticker {
        fn handle(&mut self, msg: BoxMsg, ctx: &mut Ctx<'_>) {
            if msg.is::<Start>() {
                if let Some(j) = self.job {
                    ctx.job_started(j);
                }
            }
            if msg.is::<Start>() || msg.is::<Tick>() {
                if self.left > 0 {
                    self.left -= 1;
                    if self.left == 0 {
                        if let Some(j) = self.job {
                            ctx.job_progress(j, 64, 1);
                            ctx.job_completed(j);
                        }
                    }
                }
                ctx.timer(Tick, SimDuration::from_millis(1));
            }
        }
    }

    #[test]
    fn run_jobs_for_stops_exactly_at_completion() {
        let mut w = World::new(1);
        let job = w.register_job("ticker");
        let a = w.add_actor(
            "t",
            Ticker {
                job: Some(job),
                left: 6,
            },
        );
        w.send_now(a, Start);
        assert!(w.run_jobs_for(SimDuration::from_secs(1)));
        // completion fires on the 6th event: Start at 0 ms then ticks at
        // 1..5 ms — the clock stops at the completing event, not at the
        // end of any polling slice, even though ticks keep queueing.
        assert_eq!(w.now(), SimTime::from_nanos(5_000_000));
        assert_eq!(w.jobs.completed_at(job), Some(w.now()));
        assert_eq!(w.jobs.bytes(job), 64);
        assert_eq!(w.jobs.ops(job), 1);
        assert_eq!(w.jobs.elapsed(job), Some(SimDuration::from_millis(5)));
    }

    #[test]
    fn run_jobs_for_caps_out_at_deadline() {
        let mut w = World::new(1);
        let job = w.register_job("never");
        let a = w.add_actor("t", Ticker { job: None, left: 0 });
        w.send_now(a, Start);
        assert!(!w.run_jobs_for(SimDuration::from_millis(10)));
        assert_eq!(w.now(), SimTime::from_nanos(10_000_000));
        assert!(!w.jobs.is_complete(job));
    }

    #[test]
    fn run_jobs_for_waits_on_every_registered_job() {
        let mut w = World::new(1);
        let j1 = w.register_job("fast");
        let j2 = w.register_job("slow");
        let a = w.add_actor(
            "fast",
            Ticker {
                job: Some(j1),
                left: 2,
            },
        );
        let b = w.add_actor(
            "slow",
            Ticker {
                job: Some(j2),
                left: 9,
            },
        );
        w.send_now(a, Start);
        w.send_now(b, Start);
        assert!(w.run_jobs_for(SimDuration::from_secs(1)));
        assert_eq!(
            w.now(),
            SimTime::from_nanos(8_000_000),
            "stops at the last job"
        );
        assert!(w.jobs.is_complete(j1) && w.jobs.is_complete(j2));
    }

    #[test]
    fn lifecycle_and_pending_count() {
        let mut jobs = Jobs::default();
        let a = jobs.register("a");
        let b = jobs.register("b");
        assert_eq!(jobs.pending(), 2);
        assert_eq!(jobs.label(a), "a");

        jobs.start(a, SimTime::from_nanos(10));
        jobs.start(a, SimTime::from_nanos(99)); // first call wins
        assert_eq!(jobs.started_at(a), Some(SimTime::from_nanos(10)));

        jobs.progress(a, 100, 1);
        jobs.progress(a, 50, 2);
        assert_eq!(jobs.bytes(a), 150);
        assert_eq!(jobs.ops(a), 3);

        jobs.complete(a, SimTime::from_nanos(30));
        jobs.complete(a, SimTime::from_nanos(77)); // idempotent
        assert_eq!(jobs.pending(), 1);
        assert_eq!(jobs.completed_at(a), Some(SimTime::from_nanos(30)));
        assert_eq!(jobs.elapsed(a), Some(SimDuration::from_nanos(20)));
        assert!(jobs.is_complete(a));
        assert!(!jobs.is_complete(b));

        jobs.complete(b, SimTime::from_nanos(40));
        assert_eq!(jobs.pending(), 0);
        assert_eq!(jobs.elapsed(b), None, "b never signalled a start");
    }
}

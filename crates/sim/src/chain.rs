//! CPU chains: multi-stage costed operations.
//!
//! A chain is an ordered sequence of [`Stage`]s followed by a completion
//! message. Stages model the hops of an I/O path: cycles burned on a
//! specific thread (subject to scheduling!), serialization on a link,
//! service at a block device, or a pure delay. The engine advances a chain
//! stage by stage; CPU stages go through the fair scheduler, so chains
//! automatically experience run-queue delays when hosts are oversubscribed.
//!
//! Example — the vanilla virtio-net transmit path for one TSO segment is a
//! chain of four CPU stages on four different threads (guest TX, vhost TX,
//! vhost RX, guest RX), which is exactly how `vread-net` builds it.

use crate::cpu::CpuCategory;
use crate::ids::{ActorId, BlockDevId, LinkId, ThreadId};
use crate::msg::BoxMsg;
use crate::time::SimDuration;
use std::collections::VecDeque;

/// One step of a [`Stage`] chain.
#[derive(Debug, Clone, PartialEq)]
pub enum Stage {
    /// Burn `cycles` on `thread`, accounted under `cat`. The wall time this
    /// takes depends on the host's clock frequency and on scheduling.
    Cpu {
        /// The thread that must execute this work.
        thread: ThreadId,
        /// Work amount in CPU cycles.
        cycles: u64,
        /// Accounting category.
        cat: CpuCategory,
    },
    /// Serialize `bytes` over `link` (FIFO queueing + propagation delay).
    Link {
        /// The link to traverse.
        link: LinkId,
        /// Payload size in bytes.
        bytes: u64,
    },
    /// Service a `bytes`-sized request at block device `dev`.
    Disk {
        /// The device to access.
        dev: BlockDevId,
        /// Request size in bytes.
        bytes: u64,
    },
    /// Wait a fixed duration (timer, deliberate pacing).
    Delay {
        /// How long to wait.
        dur: SimDuration,
    },
}

impl Stage {
    /// Convenience constructor for a CPU stage.
    pub fn cpu(thread: ThreadId, cycles: u64, cat: CpuCategory) -> Stage {
        Stage::Cpu {
            thread,
            cycles,
            cat,
        }
    }

    /// Convenience constructor for a link stage.
    pub fn link(link: LinkId, bytes: u64) -> Stage {
        Stage::Link { link, bytes }
    }

    /// Convenience constructor for a disk stage.
    pub fn disk(dev: BlockDevId, bytes: u64) -> Stage {
        Stage::Disk { dev, bytes }
    }

    /// Convenience constructor for a delay stage.
    pub fn delay(dur: SimDuration) -> Stage {
        Stage::Delay { dur }
    }
}

/// An in-flight chain owned by the engine.
#[derive(Debug)]
pub(crate) struct Chain {
    pub(crate) stages: VecDeque<Stage>,
    /// `(recipient, message)` delivered when the last stage completes.
    pub(crate) then: Option<(ActorId, BoxMsg)>,
}

impl Chain {
    pub(crate) fn new(stages: Vec<Stage>, to: ActorId, msg: BoxMsg) -> Self {
        Chain {
            stages: stages.into(),
            then: Some((to, msg)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        let t = ThreadId::from_raw(1);
        assert_eq!(
            Stage::cpu(t, 5, CpuCategory::Other),
            Stage::Cpu {
                thread: t,
                cycles: 5,
                cat: CpuCategory::Other
            }
        );
        assert_eq!(
            Stage::delay(SimDuration::from_nanos(3)),
            Stage::Delay {
                dur: SimDuration::from_nanos(3)
            }
        );
    }
}

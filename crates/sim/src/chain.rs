//! CPU chains: multi-stage costed operations.
//!
//! A chain is an ordered sequence of [`Stage`]s followed by a completion
//! message. Stages model the hops of an I/O path: cycles burned on a
//! specific thread (subject to scheduling!), serialization on a link,
//! service at a block device, or a pure delay. The engine advances a chain
//! stage by stage; CPU stages go through the fair scheduler, so chains
//! automatically experience run-queue delays when hosts are oversubscribed.
//!
//! Example — the vanilla virtio-net transmit path for one TSO segment is a
//! chain of four CPU stages on four different threads (guest TX, vhost TX,
//! vhost RX, guest RX), which is exactly how `vread-net` builds it.
//!
//! Stages are small `Copy` values and a [`StageList`] keeps the first
//! [`INLINE_STAGES`] of them inline (no heap allocation); real paths are
//! almost always ≤ 8 hops, so a typical chain start allocates nothing
//! beyond its completion message.

use crate::cpu::CpuCategory;
use crate::ids::{ActorId, BlockDevId, LinkId, ThreadId};
use crate::msg::BoxMsg;
use crate::span::SpanId;
use crate::time::SimDuration;

/// One step of a [`Stage`] chain.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Stage {
    /// Burn `cycles` on `thread`, accounted under `cat`. The wall time this
    /// takes depends on the host's clock frequency and on scheduling.
    Cpu {
        /// The thread that must execute this work.
        thread: ThreadId,
        /// Work amount in CPU cycles.
        cycles: u64,
        /// Accounting category.
        cat: CpuCategory,
    },
    /// Serialize `bytes` over `link` (FIFO queueing + propagation delay).
    Link {
        /// The link to traverse.
        link: LinkId,
        /// Payload size in bytes.
        bytes: u64,
    },
    /// Service a `bytes`-sized request at block device `dev`.
    Disk {
        /// The device to access.
        dev: BlockDevId,
        /// Request size in bytes.
        bytes: u64,
    },
    /// Wait a fixed duration (timer, deliberate pacing).
    Delay {
        /// How long to wait.
        dur: SimDuration,
    },
    /// A *data copy*: burns `cycles` on `thread` exactly like
    /// [`Stage::Cpu`], but additionally records `bytes` moved against the
    /// chain's span (the flight recorder's copies-per-read ledger,
    /// [`crate::span`]). Timing and accounting are identical to an
    /// equivalent `Cpu` stage whether spans are on or off.
    Copy {
        /// The thread performing the copy.
        thread: ThreadId,
        /// Cost of the copy (plus any fused per-slot/syscall work).
        cycles: u64,
        /// Accounting category (e.g. [`CpuCategory::CopyVreadBuffer`]).
        cat: CpuCategory,
        /// Payload bytes moved.
        bytes: u64,
    },
    /// A zero-copy *mapping*: `bytes` of payload made visible to the
    /// consumer without moving them (page remapping into a shared
    /// region). Burns `cycles` like [`Stage::Cpu`] — the page-table and
    /// bookkeeping cost — and records `bytes` as *mapped* on the chain's
    /// span, so the copies-per-read ledger can distinguish moved bytes
    /// from mapped ones. This is how a content-addressed host store
    /// serves dedup hits below vRead's two copies per read.
    Map {
        /// The thread performing the mapping.
        thread: ThreadId,
        /// Bookkeeping cost of the mapping.
        cycles: u64,
        /// Accounting category.
        cat: CpuCategory,
        /// Payload bytes made visible.
        bytes: u64,
    },
}

impl Stage {
    /// Convenience constructor for a CPU stage.
    pub fn cpu(thread: ThreadId, cycles: u64, cat: CpuCategory) -> Stage {
        Stage::Cpu {
            thread,
            cycles,
            cat,
        }
    }

    /// Convenience constructor for a link stage.
    pub fn link(link: LinkId, bytes: u64) -> Stage {
        Stage::Link { link, bytes }
    }

    /// Convenience constructor for a disk stage.
    pub fn disk(dev: BlockDevId, bytes: u64) -> Stage {
        Stage::Disk { dev, bytes }
    }

    /// Convenience constructor for a delay stage.
    pub fn delay(dur: SimDuration) -> Stage {
        Stage::Delay { dur }
    }

    /// Convenience constructor for a data-copy stage.
    pub fn copy(thread: ThreadId, cycles: u64, cat: CpuCategory, bytes: u64) -> Stage {
        Stage::Copy {
            thread,
            cycles,
            cat,
            bytes,
        }
    }

    /// Convenience constructor for a zero-copy mapping stage.
    pub fn map(thread: ThreadId, cycles: u64, cat: CpuCategory, bytes: u64) -> Stage {
        Stage::Map {
            thread,
            cycles,
            cat,
            bytes,
        }
    }
}

/// Number of stages a [`StageList`] stores inline before spilling to the
/// heap.
pub const INLINE_STAGES: usize = 8;

const FILLER: Stage = Stage::Delay {
    dur: SimDuration::ZERO,
};

/// An ordered stage queue with inline storage for the common case.
///
/// The first [`INLINE_STAGES`] stages live in a fixed array inside the
/// struct; any excess spills to a `Vec`. Consumption advances a cursor
/// instead of shifting elements.
#[derive(Debug, Clone)]
pub struct StageList {
    inline: [Stage; INLINE_STAGES],
    spill: Vec<Stage>,
    /// Next stage to consume (monotonic; counts consumed stages).
    pos: u32,
    /// Total stages ever pushed.
    len: u32,
}

impl Default for StageList {
    fn default() -> Self {
        StageList::new()
    }
}

impl StageList {
    /// Creates an empty list.
    pub fn new() -> Self {
        StageList {
            inline: [FILLER; INLINE_STAGES],
            spill: Vec::new(),
            pos: 0,
            len: 0,
        }
    }

    /// A list holding a single stage (never allocates).
    pub fn single(s: Stage) -> Self {
        let mut l = StageList::new();
        l.push(s);
        l
    }

    /// Appends a stage.
    pub fn push(&mut self, s: Stage) {
        let i = self.len as usize;
        if i < INLINE_STAGES {
            self.inline[i] = s;
        } else {
            self.spill.push(s);
        }
        self.len += 1;
    }

    /// Removes and returns the next stage, if any.
    pub fn pop_front(&mut self) -> Option<Stage> {
        let s = self.peek()?;
        self.pos += 1;
        Some(s)
    }

    /// The next stage without consuming it.
    pub fn peek(&self) -> Option<Stage> {
        if self.pos == self.len {
            return None;
        }
        let i = self.pos as usize;
        Some(if i < INLINE_STAGES {
            self.inline[i]
        } else {
            self.spill[i - INLINE_STAGES]
        })
    }

    /// Stages not yet consumed.
    pub fn remaining(&self) -> usize {
        (self.len - self.pos) as usize
    }

    /// True when all stages have been consumed.
    pub fn is_empty(&self) -> bool {
        self.pos == self.len
    }
}

impl From<Stage> for StageList {
    fn from(s: Stage) -> Self {
        StageList::single(s)
    }
}

impl<const N: usize> From<[Stage; N]> for StageList {
    fn from(arr: [Stage; N]) -> Self {
        let mut l = StageList::new();
        for s in arr {
            l.push(s);
        }
        l
    }
}

impl From<&[Stage]> for StageList {
    fn from(v: &[Stage]) -> Self {
        let mut l = StageList::new();
        for &s in v {
            l.push(s);
        }
        l
    }
}

impl From<Vec<Stage>> for StageList {
    fn from(v: Vec<Stage>) -> Self {
        v.as_slice().into()
    }
}

/// An in-flight chain owned by the engine.
#[derive(Debug)]
pub(crate) struct Chain {
    pub(crate) stages: StageList,
    /// `(recipient, message)` delivered when the last stage completes.
    pub(crate) then: Option<(ActorId, BoxMsg)>,
    /// The span this chain's work is attributed to ([`SpanId::NONE`]
    /// when untraced).
    pub(crate) span: SpanId,
}

impl Chain {
    pub(crate) fn new(stages: StageList, to: ActorId, msg: BoxMsg) -> Self {
        Chain {
            stages,
            then: Some((to, msg)),
            span: SpanId::NONE,
        }
    }

    pub(crate) fn new_on(stages: StageList, to: ActorId, msg: BoxMsg, span: SpanId) -> Self {
        Chain {
            stages,
            then: Some((to, msg)),
            span,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        let t = ThreadId::from_raw(1);
        assert_eq!(
            Stage::cpu(t, 5, CpuCategory::Other),
            Stage::Cpu {
                thread: t,
                cycles: 5,
                cat: CpuCategory::Other
            }
        );
        assert_eq!(
            Stage::delay(SimDuration::from_nanos(3)),
            Stage::Delay {
                dur: SimDuration::from_nanos(3)
            }
        );
    }

    #[test]
    fn stage_list_inline_and_spill() {
        let mut l = StageList::new();
        assert!(l.is_empty());
        for i in 0..INLINE_STAGES + 3 {
            l.push(Stage::delay(SimDuration::from_nanos(i as u64)));
        }
        assert_eq!(l.remaining(), INLINE_STAGES + 3);
        for i in 0..INLINE_STAGES + 3 {
            assert_eq!(
                l.pop_front(),
                Some(Stage::delay(SimDuration::from_nanos(i as u64))),
                "stage {i}"
            );
        }
        assert!(l.is_empty());
        assert_eq!(l.pop_front(), None);
    }

    #[test]
    fn stage_list_from_conversions() {
        let t = ThreadId::from_raw(0);
        let single: StageList = Stage::cpu(t, 1, CpuCategory::Other).into();
        assert_eq!(single.remaining(), 1);

        let arr: StageList = [
            Stage::delay(SimDuration::from_nanos(1)),
            Stage::delay(SimDuration::from_nanos(2)),
        ]
        .into();
        assert_eq!(arr.remaining(), 2);

        let vec: StageList = vec![Stage::delay(SimDuration::ZERO); 12].into();
        assert_eq!(vec.remaining(), 12);
    }
}

//! Serialized hardware resources: network links and block devices.
//!
//! Both follow the classic "free-at" queueing shortcut: a request submitted
//! at `now` starts service at `max(now, free_at)`, occupies the resource
//! for its serialization/service time, and completes after any fixed
//! latency. This models a FIFO device queue without per-request events.

use crate::time::{SimDuration, SimTime};

/// A point-to-point serialized link (physical NIC + LAN segment).
#[derive(Debug, Clone)]
pub struct Link {
    /// Bandwidth in bytes per second.
    pub bandwidth_bps: f64,
    /// One-way propagation + switching latency.
    pub latency: SimDuration,
    free_at: SimTime,
    /// Total bytes ever submitted (for utilization reporting).
    pub bytes_total: u64,
}

impl Link {
    /// Creates a link with the given bandwidth (bytes/second) and one-way
    /// latency.
    pub fn new(bandwidth_bps: f64, latency: SimDuration) -> Self {
        assert!(bandwidth_bps > 0.0, "link bandwidth must be positive");
        Link {
            bandwidth_bps,
            latency,
            free_at: SimTime::ZERO,
            bytes_total: 0,
        }
    }

    /// Convenience constructor from gigabits per second.
    pub fn from_gbps(gbps: f64, latency: SimDuration) -> Self {
        Link::new(gbps * 1e9 / 8.0, latency)
    }

    /// Submits `bytes` at `now`; returns the delivery completion time
    /// (after serialization behind queued traffic plus propagation).
    pub fn submit(&mut self, now: SimTime, bytes: u64) -> SimTime {
        let start = self.free_at.max(now);
        let ser = SimDuration::from_secs_f64(bytes as f64 / self.bandwidth_bps);
        self.free_at = start + ser;
        self.bytes_total += bytes;
        self.free_at + self.latency
    }

    /// The instant the link becomes idle.
    pub fn free_at(&self) -> SimTime {
        self.free_at
    }

    /// Bytes still serializing (queued behind the wire) at `now` — the
    /// free-at backlog converted back to bytes. Zero when idle. This is
    /// the "bytes in flight" level the timeline sampler tracks.
    pub fn backlog_bytes(&self, now: SimTime) -> f64 {
        if self.free_at <= now {
            0.0
        } else {
            self.free_at.since(now).as_secs_f64() * self.bandwidth_bps
        }
    }

    /// The conservative lookahead this link grants a sharded run: no
    /// message travelling over it can arrive at the far side sooner than
    /// its one-way propagation latency, so the parallel engine (see
    /// [`crate::par`]) may execute that far ahead between barriers.
    pub fn lookahead(&self) -> SimDuration {
        self.latency
    }
}

/// A queued block device (SSD).
#[derive(Debug, Clone)]
pub struct BlockDev {
    /// Fixed per-request access latency.
    pub access_latency: SimDuration,
    /// Sustained transfer bandwidth in bytes per second.
    pub bandwidth_bps: f64,
    free_at: SimTime,
    /// Total bytes ever transferred (reads + writes).
    pub bytes_total: u64,
    /// Total requests ever served.
    pub requests_total: u64,
}

impl BlockDev {
    /// Creates a device with the given access latency and bandwidth
    /// (bytes/second).
    pub fn new(access_latency: SimDuration, bandwidth_bps: f64) -> Self {
        assert!(bandwidth_bps > 0.0, "device bandwidth must be positive");
        BlockDev {
            access_latency,
            bandwidth_bps,
            free_at: SimTime::ZERO,
            bytes_total: 0,
            requests_total: 0,
        }
    }

    /// Submits a `bytes`-sized request at `now`; returns its completion
    /// time (queueing + access latency + transfer).
    pub fn submit(&mut self, now: SimTime, bytes: u64) -> SimTime {
        let start = self.free_at.max(now);
        let xfer = SimDuration::from_secs_f64(bytes as f64 / self.bandwidth_bps);
        let done = start + self.access_latency + xfer;
        // The device is busy until the transfer completes.
        self.free_at = done;
        self.bytes_total += bytes;
        self.requests_total += 1;
        done
    }

    /// The instant the device becomes idle.
    pub fn free_at(&self) -> SimTime {
        self.free_at
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn link_serializes_back_to_back() {
        // 1 GB/s, 10us latency
        let mut l = Link::new(1e9, SimDuration::from_micros(10));
        let t0 = SimTime::ZERO;
        let a = l.submit(t0, 1_000_000); // 1ms serialization
        assert_eq!(a.as_nanos(), 1_000_000 + 10_000);
        // second submit queues behind the first
        let b = l.submit(t0, 1_000_000);
        assert_eq!(b.as_nanos(), 2_000_000 + 10_000);
        assert_eq!(l.bytes_total, 2_000_000);
    }

    #[test]
    fn link_idle_gap_resets_queue() {
        let mut l = Link::new(1e9, SimDuration::ZERO);
        let _ = l.submit(SimTime::ZERO, 1000);
        // submit long after the first finished: no queueing
        let t = SimTime::from_nanos(1_000_000);
        let done = l.submit(t, 1000);
        assert_eq!(done.as_nanos(), 1_001_000);
    }

    #[test]
    fn from_gbps_matches() {
        let l = Link::from_gbps(10.0, SimDuration::ZERO);
        assert!((l.bandwidth_bps - 1.25e9).abs() < 1.0);
    }

    #[test]
    fn blockdev_latency_plus_transfer() {
        // 80us latency, 500 MB/s
        let mut d = BlockDev::new(SimDuration::from_micros(80), 500e6);
        let done = d.submit(SimTime::ZERO, 1_000_000); // 2ms transfer
        assert_eq!(done.as_nanos(), 80_000 + 2_000_000);
        assert_eq!(d.requests_total, 1);
    }

    #[test]
    fn blockdev_queues_fifo() {
        let mut d = BlockDev::new(SimDuration::from_micros(10), 1e9);
        let a = d.submit(SimTime::ZERO, 1_000_000);
        let b = d.submit(SimTime::ZERO, 1_000_000);
        assert!(b > a);
        assert_eq!(b.as_nanos() - a.as_nanos(), 10_000 + 1_000_000);
    }
}

//! Causal per-read spans — the flight recorder.
//!
//! The paper's argument is an *accounting* argument: every vanilla HDFS
//! read costs at least five data copies, vRead costs two, and the CPU
//! breakdowns of Figures 9/10 attribute cycles to the layer that burned
//! them. Raw engine traces ([`crate::trace`]) record events without
//! causality; this module records *why*: a [`SpanId`] is minted at the
//! top of each logical operation (an HDFS read), propagated through
//! every protocol message on its causal path, and attached to the stage
//! chains doing the work. The scheduler charges cycles to the span of
//! the work item it is executing; [`Stage::Copy`](crate::Stage) stages
//! additionally record the bytes they move, so the number of data copies
//! per read falls out of the ledger instead of being asserted by hand.
//!
//! Span collection is **off by default** and costs one branch per charge
//! site when disabled (no allocation, no time reads). All bookkeeping
//! uses [`SimTime`] only, so reports are byte-identical across runs and
//! across parallel harness job counts.
//!
//! Spans live in a generation-tagged free-list slab exactly like chains
//! ([`crate::slab`]): a late charge against a retired span id misses
//! cleanly and is counted as *unattributed* instead of corrupting
//! whatever span recycled the slot.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::cpu::CpuCategory;
use crate::time::SimTime;

/// Identifier of one span. Packs `generation << 32 | slot`; the reserved
/// value [`SpanId::NONE`] means "not traced" and makes every recording
/// call a cheap no-op, so data-path code can thread ids unconditionally.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SpanId(u64);

impl SpanId {
    /// The null span: recording against it is a no-op (or counts as
    /// unattributed work when the recorder is enabled).
    pub const NONE: SpanId = SpanId(u64::MAX);

    /// Whether this is the null span.
    pub fn is_none(self) -> bool {
        self == SpanId::NONE
    }

    /// The raw packed value (diagnostics, export).
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl std::fmt::Display for SpanId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_none() {
            write!(f, "SpanId(none)")
        } else {
            write!(f, "SpanId({})", self.0)
        }
    }
}

fn pack(gen: u32, slot: u32) -> SpanId {
    SpanId((u64::from(gen) << 32) | u64::from(slot))
}

// vread-lint: allow(checked-cast, "intentional bit-slice of the packed generation|slot id")
fn unpack(id: SpanId) -> (u32, u32) {
    let raw = id.0;
    ((raw >> 32) as u32, raw as u32)
}

/// One finished (or drained-open) span: a named node in a read's causal
/// tree carrying everything charged to it.
#[derive(Debug, Clone)]
pub struct Span {
    /// The span's id (parent links in siblings refer to it).
    pub id: SpanId,
    /// Static name, e.g. `"read"`, `"vfd_read"`, `"dn_read"`.
    pub name: &'static str,
    /// Parent span, or [`SpanId::NONE`] for a root.
    pub parent: SpanId,
    /// When the span was started.
    pub begin: SimTime,
    /// When it was explicitly ended. Spans never ended (a cancelled
    /// fetch, a stream cut off by a fault) are drained with
    /// `end == last_activity`, which makes stalls visible in the export.
    pub end: Option<SimTime>,
    /// Time of the last charge/copy against this span.
    pub last_activity: SimTime,
    /// Cycles charged, by accounting category.
    pub cycles: [f64; CpuCategory::COUNT],
    /// Payload bytes this span delivered (set by the protocol layer;
    /// the denominator of the copies-per-read ledger).
    pub bytes: u64,
    /// Bytes moved by [`Stage::Copy`](crate::Stage) stages on this span.
    pub copy_bytes: u64,
    /// Number of copy operations (chunked copies count per chunk).
    pub copies: u64,
    /// Bytes served by [`Stage::Map`](crate::Stage) stages on this span
    /// (made visible without moving — the dedup map-serve path).
    pub mapped_bytes: u64,
    /// Number of map operations.
    pub maps: u64,
    /// Run-queue wait absorbed by work on this span, in nanoseconds.
    pub queue_wait_ns: u64,
    /// Scheduler dispatches of work on this span.
    pub dispatches: u64,
}

impl Span {
    fn new(id: SpanId, name: &'static str, parent: SpanId, now: SimTime) -> Self {
        Span {
            id,
            name,
            parent,
            begin: now,
            end: None,
            last_activity: now,
            cycles: [0.0; CpuCategory::COUNT],
            bytes: 0,
            copy_bytes: 0,
            copies: 0,
            mapped_bytes: 0,
            maps: 0,
            queue_wait_ns: 0,
            dispatches: 0,
        }
    }

    /// Total cycles across all categories.
    pub fn total_cycles(&self) -> f64 {
        self.cycles.iter().sum()
    }

    /// The span's effective end time (drained-open spans use their last
    /// activity).
    pub fn end_time(&self) -> SimTime {
        self.end.unwrap_or(self.last_activity)
    }
}

/// An instant event (fault actions, protocol milestones) on the global
/// timeline.
#[derive(Debug, Clone, Copy)]
pub struct SpanMark {
    /// When it happened.
    pub t: SimTime,
    /// Static label, e.g. `"fault_daemon_crash"`.
    pub label: &'static str,
}

struct Slot {
    /// Incremented on each retire; live ids must match.
    gen: u32,
    span: Option<Span>,
}

/// The world's span recorder. Disabled by default; every recording entry
/// point checks one flag and returns, so the off path costs one branch.
#[derive(Default)]
pub struct SpanRecorder {
    enabled: bool,
    slots: Vec<Slot>,
    free: Vec<u32>,
    finished: Vec<Span>,
    marks: Vec<SpanMark>,
    /// Cycles charged while enabled that hit no live span (scheduler
    /// context switches, untraced chains, late charges to retired spans).
    unattributed_cycles: f64,
}

impl SpanRecorder {
    /// Creates a disabled recorder.
    pub fn new() -> Self {
        SpanRecorder::default()
    }

    /// Starts recording spans.
    pub fn enable(&mut self) {
        self.enabled = true;
    }

    /// Whether spans are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Cycles that hit no live span while enabled.
    pub fn unattributed_cycles(&self) -> f64 {
        self.unattributed_cycles
    }

    /// Number of live (not yet ended) spans.
    pub fn live(&self) -> usize {
        self.slots.len() - self.free.len()
    }

    /// Starts a span. Returns [`SpanId::NONE`] when disabled — the one
    /// branch the off path pays.
    pub fn start(&mut self, name: &'static str, parent: SpanId, now: SimTime) -> SpanId {
        if !self.enabled {
            return SpanId::NONE;
        }
        if let Some(slot) = self.free.pop() {
            let s = &mut self.slots[slot as usize];
            debug_assert!(s.span.is_none());
            let id = pack(s.gen, slot);
            s.span = Some(Span::new(id, name, parent, now));
            id
        } else {
            let slot = u32::try_from(self.slots.len()).expect("span slab overflow");
            let id = pack(0, slot);
            self.slots.push(Slot {
                gen: 0,
                span: Some(Span::new(id, name, parent, now)),
            });
            id
        }
    }

    fn get_mut(&mut self, id: SpanId) -> Option<&mut Span> {
        if id.is_none() {
            return None;
        }
        let (gen, slot) = unpack(id);
        let s = self.slots.get_mut(slot as usize)?;
        if s.gen != gen {
            return None;
        }
        s.span.as_mut()
    }

    /// Ends a span, retiring it to the finished list. Stale/none ids
    /// miss cleanly.
    pub fn end(&mut self, id: SpanId, now: SimTime) {
        if !self.enabled || id.is_none() {
            return;
        }
        let (gen, slot) = unpack(id);
        let Some(s) = self.slots.get_mut(slot as usize) else {
            return;
        };
        if s.gen != gen {
            return;
        }
        let Some(mut span) = s.span.take() else {
            return;
        };
        s.gen = s.gen.wrapping_add(1);
        self.free.push(slot);
        span.end = Some(now);
        span.last_activity = now;
        self.finished.push(span);
    }

    /// Charges executed cycles to `id`. Called by the scheduler at its
    /// single accounting point; a miss (disabled path never calls with a
    /// live recorder, so: null id, stale id) counts as unattributed.
    pub fn charge(&mut self, id: SpanId, cat: CpuCategory, cycles: f64, now: SimTime) {
        if !self.enabled {
            return;
        }
        match self.get_mut(id) {
            Some(sp) => {
                sp.cycles[cat as usize] += cycles;
                sp.last_activity = sp.last_activity.max(now);
            }
            None => self.unattributed_cycles += cycles,
        }
    }

    /// Records one data-copy operation of `bytes` on `id` (the cycles of
    /// the copy are charged separately through [`SpanRecorder::charge`]).
    pub fn copy(&mut self, id: SpanId, bytes: u64, now: SimTime) {
        if !self.enabled {
            return;
        }
        if let Some(sp) = self.get_mut(id) {
            sp.copy_bytes += bytes;
            sp.copies += 1;
            sp.last_activity = sp.last_activity.max(now);
        }
    }

    /// Records one zero-copy mapping of `bytes` on `id` (the bookkeeping
    /// cycles are charged separately through [`SpanRecorder::charge`]).
    pub fn mapped(&mut self, id: SpanId, bytes: u64, now: SimTime) {
        if !self.enabled {
            return;
        }
        if let Some(sp) = self.get_mut(id) {
            sp.mapped_bytes += bytes;
            sp.maps += 1;
            sp.last_activity = sp.last_activity.max(now);
        }
    }

    /// Adds delivered payload bytes to `id` (the ledger denominator).
    pub fn payload(&mut self, id: SpanId, bytes: u64) {
        if !self.enabled {
            return;
        }
        if let Some(sp) = self.get_mut(id) {
            sp.bytes += bytes;
        }
    }

    /// Attributes run-queue wait absorbed before a dispatch.
    pub fn queue_wait(&mut self, id: SpanId, ns: u64) {
        if !self.enabled {
            return;
        }
        if let Some(sp) = self.get_mut(id) {
            sp.queue_wait_ns += ns;
            sp.dispatches += 1;
        }
    }

    /// Records an instant event on the global timeline.
    pub fn mark(&mut self, label: &'static str, now: SimTime) {
        if !self.enabled {
            return;
        }
        self.marks.push(SpanMark { t: now, label });
    }

    /// Drains everything recorded so far into a report. Spans still open
    /// are closed at their last activity (making stalls visible) and the
    /// recorder is left empty but still enabled.
    pub fn drain(&mut self) -> SpanReport {
        let mut spans = std::mem::take(&mut self.finished);
        for (i, s) in self.slots.iter_mut().enumerate() {
            if let Some(mut span) = s.span.take() {
                s.gen = s.gen.wrapping_add(1);
                self.free
                    .push(u32::try_from(i).expect("span slab slot fits u32"));
                span.end = Some(span.last_activity);
                spans.push(span);
            }
        }
        // Deterministic presentation order: by begin time, then id.
        spans.sort_by_key(|s| (s.begin, s.id));
        SpanReport {
            spans,
            marks: std::mem::take(&mut self.marks),
            unattributed_cycles: std::mem::replace(&mut self.unattributed_cycles, 0.0),
        }
    }
}

// ---------------------------------------------------------------------------
// Post-run rollups
// ---------------------------------------------------------------------------

/// Everything drained from a [`SpanRecorder`] after a run.
#[derive(Debug, Clone, Default)]
pub struct SpanReport {
    /// All spans, ordered by `(begin, id)`.
    pub spans: Vec<Span>,
    /// Instant events, in recording order.
    pub marks: Vec<SpanMark>,
    /// Cycles charged while enabled that no live span claimed.
    pub unattributed_cycles: f64,
}

/// One row of the per-layer breakdown: all spans sharing a name, with
/// cycles folded into the paper's figure buckets.
#[derive(Debug, Clone)]
pub struct LayerRow {
    /// Span name ("layer").
    pub name: &'static str,
    /// Number of spans with this name.
    pub count: usize,
    /// Cycles per figure bucket (see [`CpuCategory::figure_bucket`]).
    pub cycles_by_bucket: BTreeMap<&'static str, f64>,
    /// Total cycles.
    pub cycles: f64,
    /// Payload bytes delivered by these spans.
    pub bytes: u64,
    /// Bytes moved by copy stages on these spans.
    pub copy_bytes: u64,
    /// Copy operations on these spans.
    pub copies: u64,
    /// Bytes served by map stages on these spans (zero-copy).
    pub mapped_bytes: u64,
    /// Map operations on these spans.
    pub maps: u64,
    /// Run-queue wait absorbed, in nanoseconds.
    pub queue_wait_ns: u64,
}

/// Copies-per-read ledger entry for one root span.
#[derive(Debug, Clone)]
pub struct ReadLedgerRow {
    /// The root span id.
    pub id: SpanId,
    /// Root span name.
    pub name: &'static str,
    /// Payload bytes the read delivered.
    pub payload_bytes: u64,
    /// Copy bytes summed over the root and its whole subtree.
    pub copy_bytes: u64,
    /// Copy operations over the subtree.
    pub copies: u64,
    /// Mapped (zero-copy) bytes over the subtree.
    pub mapped_bytes: u64,
    /// Map operations over the subtree.
    pub maps: u64,
    /// `copy_bytes / payload_bytes` — the paper's "data copies per read".
    pub copies_per_read: f64,
}

impl SpanReport {
    /// Total cycles attributed to spans (for conservation checks against
    /// engine accounting, together with [`SpanReport::unattributed_cycles`]).
    pub fn total_cycles(&self) -> f64 {
        self.spans.iter().map(Span::total_cycles).sum()
    }

    /// Aggregates spans by name into the Fig 9/10-shaped per-layer table,
    /// sorted by name.
    pub fn layer_table(&self) -> Vec<LayerRow> {
        let mut by_name: BTreeMap<&'static str, LayerRow> = BTreeMap::new();
        for s in &self.spans {
            let row = by_name.entry(s.name).or_insert_with(|| LayerRow {
                name: s.name,
                count: 0,
                cycles_by_bucket: BTreeMap::new(),
                cycles: 0.0,
                bytes: 0,
                copy_bytes: 0,
                copies: 0,
                mapped_bytes: 0,
                maps: 0,
                queue_wait_ns: 0,
            });
            row.count += 1;
            for cat in CpuCategory::ALL {
                let c = s.cycles[cat as usize];
                if c > 0.0 {
                    *row.cycles_by_bucket
                        .entry(cat.figure_bucket())
                        .or_insert(0.0) += c;
                    row.cycles += c;
                }
            }
            row.bytes += s.bytes;
            row.copy_bytes += s.copy_bytes;
            row.copies += s.copies;
            row.mapped_bytes += s.mapped_bytes;
            row.maps += s.maps;
            row.queue_wait_ns += s.queue_wait_ns;
        }
        by_name.into_values().collect()
    }

    /// Rolls every span's copies up to its root and emits one ledger row
    /// per root span that delivered payload, in report order.
    pub fn read_ledger(&self) -> Vec<ReadLedgerRow> {
        let index: BTreeMap<u64, usize> = self
            .spans
            .iter()
            .enumerate()
            .map(|(i, s)| (s.id.raw(), i))
            .collect();
        let root_of = |mut i: usize| -> usize {
            // Parent chains are tiny (2–3 deep); bound the walk anyway.
            for _ in 0..64 {
                let p = self.spans[i].parent;
                match index.get(&p.raw()) {
                    Some(&pi) => i = pi,
                    None => break,
                }
            }
            i
        };
        let mut rollup: BTreeMap<usize, (u64, u64, u64, u64)> = BTreeMap::new();
        for (i, s) in self.spans.iter().enumerate() {
            if s.copy_bytes > 0 || s.copies > 0 || s.mapped_bytes > 0 || s.maps > 0 {
                let e = rollup.entry(root_of(i)).or_insert((0, 0, 0, 0));
                e.0 += s.copy_bytes;
                e.1 += s.copies;
                e.2 += s.mapped_bytes;
                e.3 += s.maps;
            }
        }
        self.spans
            .iter()
            .enumerate()
            .filter(|(_, s)| {
                (s.parent.is_none() || !index.contains_key(&s.parent.raw())) && s.bytes > 0
            })
            .map(|(i, s)| {
                let (cb, cp, mb, mp) = rollup.get(&i).copied().unwrap_or((0, 0, 0, 0));
                ReadLedgerRow {
                    id: s.id,
                    name: s.name,
                    payload_bytes: s.bytes,
                    copy_bytes: cb,
                    copies: cp,
                    mapped_bytes: mb,
                    maps: mp,
                    copies_per_read: cb as f64 / s.bytes as f64,
                }
            })
            .collect()
    }

    /// Serializes the report as Chrome trace-event JSON ("X" complete
    /// events per span, "i" instants per mark), loadable in Perfetto /
    /// `chrome://tracing`. Output is deterministic: spans are already in
    /// `(begin, id)` order and all numbers are fixed-point formatted.
    pub fn chrome_trace_json(&self) -> String {
        // Track (tid) per root span, in report order; children inherit
        // their root's track so each read renders as one lane.
        let index: BTreeMap<u64, usize> = self
            .spans
            .iter()
            .enumerate()
            .map(|(i, s)| (s.id.raw(), i))
            .collect();
        let mut tids: Vec<u32> = vec![0; self.spans.len()];
        let mut next_tid = 0u32;
        for (i, tid) in tids.iter_mut().enumerate() {
            let mut r = i;
            for _ in 0..64 {
                let p = self.spans[r].parent;
                match index.get(&p.raw()) {
                    Some(&pi) => r = pi,
                    None => break,
                }
            }
            if r == i {
                next_tid += 1;
                *tid = next_tid;
            }
        }
        for i in 0..self.spans.len() {
            if tids[i] == 0 {
                let mut r = i;
                for _ in 0..64 {
                    let p = self.spans[r].parent;
                    match index.get(&p.raw()) {
                        Some(&pi) => r = pi,
                        None => break,
                    }
                }
                tids[i] = tids[r];
            }
        }
        let us = |t: SimTime| -> String {
            let ns = t.as_nanos();
            format!("{}.{:03}", ns / 1000, ns % 1000)
        };
        let mut out = String::from("{\"traceEvents\":[");
        let mut first = true;
        for (i, s) in self.spans.iter().enumerate() {
            if !first {
                out.push(',');
            }
            first = false;
            let dur_ns = s.end_time().as_nanos().saturating_sub(s.begin.as_nanos());
            // Map fields are emitted only when set, so traces of runs
            // without map-serves stay byte-identical to before they
            // existed.
            let mapped = if s.mapped_bytes > 0 || s.maps > 0 {
                format!(",\"mapped_bytes\":{},\"maps\":{}", s.mapped_bytes, s.maps)
            } else {
                String::new()
            };
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"cat\":\"span\",\"ph\":\"X\",\"ts\":{},\"dur\":{}.{:03},\
                 \"pid\":0,\"tid\":{},\"args\":{{\"span\":{},\"bytes\":{},\"copy_bytes\":{},\
                 \"copies\":{}{},\"cycles\":{:.0},\"queue_wait_ns\":{},\"dispatches\":{}}}}}",
                s.name,
                us(s.begin),
                dur_ns / 1000,
                dur_ns % 1000,
                tids[i],
                s.id.raw(),
                s.bytes,
                s.copy_bytes,
                s.copies,
                mapped,
                s.total_cycles(),
                s.queue_wait_ns,
                s.dispatches,
            );
        }
        for m in &self.marks {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"cat\":\"fault\",\"ph\":\"i\",\"ts\":{},\"pid\":0,\
                 \"tid\":0,\"s\":\"g\"}}",
                m.label,
                us(m.t),
            );
        }
        out.push_str("],\"displayTimeUnit\":\"ms\"}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn t(ns: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_nanos(ns)
    }

    #[test]
    fn disabled_recorder_is_inert() {
        let mut r = SpanRecorder::new();
        let id = r.start("read", SpanId::NONE, t(0));
        assert!(id.is_none());
        r.charge(id, CpuCategory::ClientApp, 100.0, t(1));
        r.copy(id, 4096, t(1));
        r.mark("x", t(1));
        assert_eq!(r.unattributed_cycles(), 0.0);
        let rep = r.drain();
        assert!(rep.spans.is_empty() && rep.marks.is_empty());
    }

    #[test]
    fn charge_copy_and_end_roundtrip() {
        let mut r = SpanRecorder::new();
        r.enable();
        let root = r.start("read", SpanId::NONE, t(0));
        let child = r.start("vfd_read", root, t(5));
        r.payload(root, 1000);
        r.charge(child, CpuCategory::CopyVreadBuffer, 500.0, t(10));
        r.copy(child, 1000, t(10));
        r.copy(child, 1000, t(12));
        r.end(child, t(20));
        r.end(root, t(25));
        let rep = r.drain();
        assert_eq!(rep.spans.len(), 2);
        assert_eq!(rep.spans[0].name, "read");
        assert_eq!(rep.spans[1].copies, 2);
        assert_eq!(rep.spans[1].copy_bytes, 2000);
        assert_eq!(rep.total_cycles(), 500.0);
        assert_eq!(rep.unattributed_cycles, 0.0);
        let ledger = rep.read_ledger();
        assert_eq!(ledger.len(), 1);
        assert!((ledger[0].copies_per_read - 2.0).abs() < 1e-9);
    }

    #[test]
    fn stale_charges_count_as_unattributed() {
        let mut r = SpanRecorder::new();
        r.enable();
        let id = r.start("read", SpanId::NONE, t(0));
        r.end(id, t(1));
        r.charge(id, CpuCategory::Other, 42.0, t(2));
        r.charge(SpanId::NONE, CpuCategory::Other, 8.0, t(2));
        assert_eq!(r.unattributed_cycles(), 50.0);
        // The recycled slot must not alias the retired span.
        let id2 = r.start("read", SpanId::NONE, t(3));
        assert_ne!(id, id2);
        r.charge(id, CpuCategory::Other, 1.0, t(4));
        let rep = r.drain();
        assert_eq!(rep.unattributed_cycles, 51.0);
        // vread-lint: allow(float-accum, "drain sorts spans by (begin, id), a fixed order")
        assert_eq!(rep.spans.iter().map(Span::total_cycles).sum::<f64>(), 0.0);
    }

    #[test]
    fn open_spans_drain_at_last_activity() {
        let mut r = SpanRecorder::new();
        r.enable();
        let id = r.start("read", SpanId::NONE, t(10));
        r.charge(id, CpuCategory::ClientApp, 1.0, t(30));
        let rep = r.drain();
        assert_eq!(rep.spans.len(), 1);
        assert_eq!(rep.spans[0].end, Some(t(30)));
        // drain leaves the recorder reusable
        assert_eq!(r.live(), 0);
    }

    #[test]
    fn ledger_rolls_subtree_copies_to_root() {
        let mut r = SpanRecorder::new();
        r.enable();
        let a = r.start("read", SpanId::NONE, t(0));
        let b = r.start("block_fetch", a, t(1));
        let c = r.start("dn_read", b, t(2));
        r.payload(a, 100);
        r.copy(b, 400, t(3));
        r.copy(c, 100, t(4));
        for id in [c, b, a] {
            r.end(id, t(10));
        }
        let ledger = r.drain().read_ledger();
        assert_eq!(ledger.len(), 1);
        assert_eq!(ledger[0].copy_bytes, 500);
        assert_eq!(ledger[0].copies, 2);
        assert!((ledger[0].copies_per_read - 5.0).abs() < 1e-9);
    }

    #[test]
    fn mapped_bytes_roll_up_separately_from_copies() {
        let mut r = SpanRecorder::new();
        r.enable();
        let a = r.start("read", SpanId::NONE, t(0));
        let b = r.start("vfd_read", a, t(1));
        r.payload(a, 1000);
        // dedup serve: the push is a map, only the guest pop copies
        r.mapped(b, 1000, t(2));
        r.copy(b, 1000, t(3));
        for id in [b, a] {
            r.end(id, t(10));
        }
        let rep = r.drain();
        let ledger = rep.read_ledger();
        assert_eq!(ledger.len(), 1);
        assert_eq!(ledger[0].copy_bytes, 1000);
        assert_eq!(ledger[0].mapped_bytes, 1000);
        assert_eq!(ledger[0].maps, 1);
        assert!((ledger[0].copies_per_read - 1.0).abs() < 1e-9);
        // mapped args appear in the chrome export only when present
        let json = rep.chrome_trace_json();
        assert!(json.contains("\"mapped_bytes\":1000,\"maps\":1"));
        let empty = SpanReport::default().chrome_trace_json();
        assert!(!empty.contains("mapped_bytes"));
    }

    #[test]
    fn layer_table_groups_by_name() {
        let mut r = SpanRecorder::new();
        r.enable();
        for i in 0..3 {
            let id = r.start("read", SpanId::NONE, t(i));
            r.charge(id, CpuCategory::ClientApp, 10.0, t(i + 1));
            r.end(id, t(i + 2));
        }
        let id = r.start("dn_read", SpanId::NONE, t(9));
        r.charge(id, CpuCategory::CopyVirtioVqueue, 5.0, t(10));
        r.end(id, t(11));
        let table = r.drain().layer_table();
        assert_eq!(table.len(), 2);
        assert_eq!(table[0].name, "dn_read");
        assert_eq!(table[1].name, "read");
        assert_eq!(table[1].count, 3);
        assert_eq!(table[1].cycles, 30.0);
        assert_eq!(
            table[0].cycles_by_bucket.get("data copy(virtio-vqueue)"),
            Some(&5.0)
        );
    }

    #[test]
    fn chrome_trace_is_valid_shaped_json() {
        let mut r = SpanRecorder::new();
        r.enable();
        let root = r.start("read", SpanId::NONE, t(1_500));
        let child = r.start("vfd_read", root, t(2_000));
        r.end(child, t(4_000));
        r.end(root, t(5_500));
        r.mark("fault_daemon_crash", t(3_000));
        let json = r.drain().chrome_trace_json();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.ends_with("],\"displayTimeUnit\":\"ms\"}"));
        assert!(json.contains("\"name\":\"read\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ts\":1.500"));
        assert!(json.contains("\"ph\":\"i\""));
        // root and child share a track
        assert!(json.matches("\"tid\":1").count() >= 2);
        // braces balance (cheap well-formedness check)
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
    }
}

//! Dynamically-typed messages.
//!
//! Actors across different crates define their own message enums; the
//! engine moves them around as [`BoxMsg`] (`Box<dyn Any + Send>`) and each
//! actor downcasts to the types it understands.

use std::any::Any;

/// A type-erased message. Every concrete message type is `'static + Send`.
pub type BoxMsg = Box<dyn Any + Send>;

/// The conventional kick-off message: scenario builders send `Start` to the
/// root actors of a workload once the world is assembled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Start;

/// Attempts to downcast a boxed message to a concrete type, handing the
/// message back on mismatch so a handler can try the next type.
///
/// # Example
///
/// ```rust
/// use vread_sim::msg::{downcast, BoxMsg};
/// let m: BoxMsg = Box::new(5u32);
/// let m = match downcast::<String>(m) {
///     Ok(_) => unreachable!("not a String"),
///     Err(m) => m,
/// };
/// assert_eq!(*downcast::<u32>(m).unwrap(), 5);
/// ```
pub fn downcast<T: 'static>(msg: BoxMsg) -> Result<Box<T>, BoxMsg> {
    msg.downcast::<T>()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn downcast_hits_and_misses() {
        let m: BoxMsg = Box::new(Start);
        assert!(m.is::<Start>());
        let m = downcast::<u64>(m).unwrap_err();
        assert!(downcast::<Start>(m).is_ok());
    }
}

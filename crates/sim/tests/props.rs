//! Property-based tests of the scheduler and engine invariants.

use proptest::prelude::*;
use vread_sim::prelude::*;

/// A workload: each entry spawns an actor looping `bursts` CPU bursts of
/// `cycles` with `gap_us` idle between them.
#[derive(Debug, Clone)]
struct Job {
    cycles: u64,
    bursts: u32,
    gap_us: u64,
}

struct Looper {
    thread: ThreadId,
    job: Job,
    left: u32,
}

struct Done;
struct Wake;

impl Actor for Looper {
    fn handle(&mut self, msg: BoxMsg, ctx: &mut Ctx<'_>) {
        if msg.is::<Start>() || msg.is::<Wake>() {
            if self.left == 0 {
                ctx.metrics().incr("jobs_done");
                return;
            }
            self.left -= 1;
            let me = ctx.me();
            ctx.cpu(self.thread, self.job.cycles, CpuCategory::Other, me, Done);
        } else if msg.is::<Done>() {
            if self.job.gap_us == 0 {
                let me = ctx.me();
                ctx.send(me, Wake);
            } else {
                ctx.timer(Wake, SimDuration::from_micros(self.job.gap_us));
            }
        }
    }
}

fn job_strategy() -> impl Strategy<Value = Job> {
    (1_000u64..2_000_000, 1u32..12, 0u64..500).prop_map(|(cycles, bursts, gap_us)| Job {
        cycles,
        bursts,
        gap_us,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// All submitted CPU work completes, total accounted cycles equal the
    /// submitted cycles (± context-switch/migration overheads, which are
    /// extra), and no core is over-committed.
    #[test]
    fn scheduler_conserves_work(
        jobs in proptest::collection::vec(job_strategy(), 1..10),
        cores in 1usize..5,
        ghz in prop_oneof![Just(1.6f64), Just(2.0), Just(3.2)],
    ) {
        let mut w = World::new(42);
        let h = w.add_host("h", cores, ghz);
        let mut submitted = 0.0f64;
        let mut threads = Vec::new();
        for (i, job) in jobs.iter().enumerate() {
            let t = w.add_thread(h, &format!("t{i}"));
            threads.push(t);
            submitted += job.cycles as f64 * job.bursts as f64;
            let a = w.add_actor(
                &format!("job{i}"),
                Looper { thread: t, job: job.clone(), left: job.bursts },
            );
            w.send_now(a, Start);
        }
        w.run();

        // every job ran to completion
        prop_assert_eq!(w.metrics.counter("jobs_done") as usize, jobs.len());

        // work conservation: accounted 'Other'-category cycles cover the
        // submitted cycles (switch costs are also Other, so >=)
        let accounted: f64 = threads
            .iter()
            .map(|t| w.acct.cycles(t.index(), CpuCategory::Other))
            .sum();
        prop_assert!(
            accounted >= submitted * 0.999,
            "accounted {} < submitted {}", accounted, submitted
        );

        // no over-commit: total busy time <= cores * elapsed
        let busy: u64 = threads.iter().map(|t| w.acct.busy_ns(t.index())).sum();
        let cap = w.now().as_nanos() * cores as u64;
        prop_assert!(busy <= cap + 1000, "busy {} > cap {}", busy, cap);
    }

    /// Identical seeds and workloads give bit-identical schedules.
    #[test]
    fn deterministic_across_runs(
        jobs in proptest::collection::vec(job_strategy(), 1..6),
    ) {
        let run = || {
            let mut w = World::new(7);
            let h = w.add_host("h", 2, 2.0);
            for (i, job) in jobs.iter().enumerate() {
                let t = w.add_thread(h, &format!("t{i}"));
                let a = w.add_actor(
                    &format!("job{i}"),
                    Looper { thread: t, job: job.clone(), left: job.bursts },
                );
                w.send_now(a, Start);
            }
            w.run();
            (w.now(), w.events_processed())
        };
        prop_assert_eq!(run(), run());
    }

    /// Chains across random stages always complete exactly once.
    #[test]
    fn chains_complete_exactly_once(
        stages in proptest::collection::vec((0u64..100_000, 0u8..2), 1..8),
        n_chains in 1usize..12,
    ) {
        struct Counter;
        struct Fin;
        impl Actor for Counter {
            fn handle(&mut self, msg: BoxMsg, ctx: &mut Ctx<'_>) {
                if msg.is::<Fin>() {
                    ctx.metrics().incr("fins");
                }
            }
        }
        let mut w = World::new(3);
        let h = w.add_host("h", 2, 2.0);
        let t1 = w.add_thread(h, "t1");
        let t2 = w.add_thread(h, "t2");
        let sink = w.add_actor("sink", Counter);
        for _ in 0..n_chains {
            let st: Vec<Stage> = stages
                .iter()
                .map(|&(cyc, which)| {
                    Stage::cpu(if which == 0 { t1 } else { t2 }, cyc, CpuCategory::Other)
                })
                .collect();
            w.start_chain(st, sink, Fin);
        }
        w.run();
        prop_assert_eq!(w.metrics.counter("fins") as usize, n_chains);
    }
}

//! Property-based thread-invariance of the sharded engine: random relay
//! topologies (random fan-out targets, hop delays, local CPU load, token
//! counts) must execute the exact same event history — clock, event
//! count, and the order-sensitive arrival trace — at every worker-thread
//! count. This is the load-bearing property behind byte-identical
//! `repro … --engine-threads N` output.

use proptest::prelude::*;
use vread_sim::par::{run_sharded, EngineOpts, Shard};
use vread_sim::prelude::*;

/// One shard of a random topology.
#[derive(Debug, Clone)]
struct Node {
    /// Which shard this node forwards tokens to (may be itself).
    target: usize,
    /// Hop delay multiplier: the actual delay is `mult * base`, so every
    /// hop is at least one lookahead window.
    mult: u64,
    /// Tokens this node injects at time zero.
    kick: bool,
    /// Hops the node will forward before going quiet.
    hops: u32,
    /// Local CPU ping-pong rounds, interleaved with remote arrivals.
    rounds: u32,
}

/// Forwards tokens across shards and records an order-sensitive trace of
/// every arrival.
struct Relay {
    peer_shard: ShardId,
    peer: ActorId,
    hop: SimDuration,
    left: u32,
}

impl Actor for Relay {
    fn handle(&mut self, msg: BoxMsg, ctx: &mut Ctx<'_>) {
        if msg.is::<Start>() || msg.is::<u32>() {
            let now = ctx.now().as_nanos();
            // `sample` preserves insertion order, so any reordering of
            // arrivals under a different thread count changes the trace.
            #[allow(clippy::cast_precision_loss)]
            ctx.metrics().sample("arrival_ns", now as f64);
            if self.left > 0 {
                self.left -= 1;
                ctx.post_remote(self.peer_shard, self.peer, self.left, self.hop);
            }
        }
    }
}

/// Local CPU load sharing the shard's host with the relay.
struct Ping {
    thread: ThreadId,
    left: u32,
}

impl Actor for Ping {
    fn handle(&mut self, msg: BoxMsg, ctx: &mut Ctx<'_>) {
        if (msg.is::<Start>() || msg.is::<u8>()) && self.left > 0 {
            self.left -= 1;
            let me = ctx.me();
            ctx.cpu(self.thread, 25_000, CpuCategory::Other, me, 0u8);
        }
    }
}

fn node_world(seed: u64, node: &Node, base_us: u64) -> World {
    let mut w = World::new(seed);
    let h = w.add_host("h", 1, 3.0);
    let relay = w.add_actor(
        "relay",
        Relay {
            peer_shard: ShardId::from_raw(u16::try_from(node.target).expect("shard fits u16")),
            peer: ActorId::from_raw(0),
            hop: SimDuration::from_micros(node.mult * base_us),
            left: node.hops,
        },
    );
    assert_eq!(
        relay,
        ActorId::from_raw(0),
        "relay is actor 0 on every shard"
    );
    let t = w.add_thread(h, "ping");
    let ping = w.add_actor(
        "ping",
        Ping {
            thread: t,
            left: node.rounds,
        },
    );
    if node.kick {
        w.send_now(relay, Start);
    }
    w.send_now(ping, Start);
    w
}

/// Full observable state of one finished shard: clock, event count, and
/// the bit-exact arrival trace.
type Fingerprint = (u64, u64, Vec<u64>);

fn run_topology(nodes: &[Node], base_us: u64, threads: usize) -> Vec<Fingerprint> {
    let shards = nodes
        .iter()
        .enumerate()
        .map(|(i, node)| {
            let node = node.clone();
            Shard::new(
                format!("n{i}"),
                move || node_world(11 + i as u64, &node, base_us),
                |w: World| {
                    let trace = w
                        .metrics
                        .samples("arrival_ns")
                        .map(|s| s.values().iter().map(|v| v.to_bits()).collect())
                        .unwrap_or_default();
                    (w.now().as_nanos(), w.events_processed(), trace)
                },
            )
        })
        .collect();
    let opts = EngineOpts::new(threads).with_lookahead(SimDuration::from_micros(base_us));
    run_sharded(opts, shards)
}

/// Raw per-node draw; `target` is reduced modulo the shard count once
/// that count is known (the shim has no `prop_flat_map`).
type RawNode = ((usize, u64), (u32, u32, u32));

fn node_strategy() -> impl Strategy<Value = RawNode> {
    ((0usize..64, 1u64..4), (0u32..2, 0u32..10, 0u32..16))
}

fn topology_strategy() -> impl Strategy<Value = (Vec<Node>, u64)> {
    (
        2usize..6,
        proptest::collection::vec(node_strategy(), 5..6),
        20u64..80,
    )
        .prop_map(|(n, raw, base_us)| {
            let mut nodes: Vec<Node> = raw
                .into_iter()
                .take(n)
                .map(|((target, mult), (kick, hops, rounds))| Node {
                    target: target % n,
                    mult,
                    kick: kick == 1,
                    hops,
                    rounds,
                })
                .collect();
            // At least one token in flight, or the topology is trivially
            // quiet and the case wastes its slot.
            if !nodes.iter().any(|s| s.kick) {
                nodes[0].kick = true;
            }
            (nodes, base_us)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Random relay topologies execute an identical event history at
    /// thread counts 1, 2, and 3: same per-shard clock, same event
    /// count, same bit-exact arrival order.
    #[test]
    fn random_topologies_are_thread_invariant(topo in topology_strategy()) {
        let (nodes, base_us) = topo;
        let seq = run_topology(&nodes, base_us, 1);
        prop_assert_eq!(&seq, &run_topology(&nodes, base_us, 2));
        prop_assert_eq!(&seq, &run_topology(&nodes, base_us, 3));
        // Every kicked shard observed at least its own injection.
        for (node, fp) in nodes.iter().zip(&seq) {
            if node.kick {
                prop_assert!(!fp.2.is_empty(), "kicked shard recorded no arrivals");
            }
        }
    }
}

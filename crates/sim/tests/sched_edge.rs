//! Scheduler edge cases: frequency changes mid-run, heavy
//! oversubscription, slice rotation fairness, zero-length stages.

use vread_sim::prelude::*;

struct Hog {
    thread: ThreadId,
    burst: u64,
}
struct Done;
impl Actor for Hog {
    fn handle(&mut self, msg: BoxMsg, ctx: &mut Ctx<'_>) {
        if msg.is::<Start>() || msg.is::<Done>() {
            let me = ctx.me();
            ctx.cpu(self.thread, self.burst, CpuCategory::Other, me, Done);
        }
    }
}

#[test]
fn frequency_change_mid_run_scales_future_work() {
    let mut w = World::new(1);
    let h = w.add_host("h", 1, 1.0);
    let t = w.add_thread(h, "t");
    let a = w.add_actor(
        "hog",
        Hog {
            thread: t,
            burst: 1_000_000,
        },
    ); // 1ms at 1GHz
    w.send_now(a, Start);
    w.run_for(SimDuration::from_millis(50));
    let cycles_at_1ghz = w.acct.total_cycles(t.index());
    // double the clock: twice the cycles retire per wall second
    w.set_host_ghz(h, 2.0);
    w.run_for(SimDuration::from_millis(50));
    let cycles_at_2ghz = w.acct.total_cycles(t.index()) - cycles_at_1ghz;
    let ratio = cycles_at_2ghz / cycles_at_1ghz;
    assert!(
        (1.8..2.2).contains(&ratio),
        "2x clock should retire ~2x cycles (ratio {ratio})"
    );
}

#[test]
fn heavy_oversubscription_is_fair_and_conserving() {
    // 12 always-runnable threads on 2 cores.
    let mut w = World::new(3);
    let h = w.add_host("h", 2, 2.0);
    let mut threads = Vec::new();
    for i in 0..12 {
        let t = w.add_thread(h, &format!("t{i}"));
        threads.push(t);
        let a = w.add_actor(
            &format!("h{i}"),
            Hog {
                thread: t,
                burst: 200_000,
            },
        );
        w.send_now(a, Start);
    }
    w.run_for(SimDuration::from_millis(300));
    let busies: Vec<f64> = threads
        .iter()
        .map(|t| w.acct.busy_ns(t.index()) as f64)
        .collect();
    let total: f64 = busies.iter().sum();
    // conservation: 2 cores × 300ms
    assert!(total <= 600e6 * 1.001, "over-committed: {total}");
    assert!(total >= 590e6, "cores should be saturated: {total}");
    // fairness: every thread within ±25% of the fair share
    let fair = total / 12.0;
    for (i, b) in busies.iter().enumerate() {
        assert!(
            (b - fair).abs() < fair * 0.25,
            "thread {i} got {b} vs fair {fair}"
        );
    }
}

#[test]
fn zero_cycle_stages_complete_instantly() {
    struct Fin;
    struct Sink {
        at: std::rc::Rc<std::cell::Cell<u64>>,
    }
    impl Actor for Sink {
        fn handle(&mut self, msg: BoxMsg, ctx: &mut Ctx<'_>) {
            if msg.is::<Fin>() {
                self.at.set(ctx.now().as_nanos());
            }
        }
    }
    let mut w = World::new(1);
    let h = w.add_host("h", 1, 1.0);
    let t = w.add_thread(h, "t");
    let at = std::rc::Rc::new(std::cell::Cell::new(u64::MAX));
    let s = w.add_actor("sink", Sink { at: at.clone() });
    w.start_chain(
        vec![
            Stage::cpu(t, 0, CpuCategory::Other),
            Stage::delay(SimDuration::ZERO),
            Stage::cpu(t, 0, CpuCategory::Other),
        ],
        s,
        Fin,
    );
    w.run();
    assert_eq!(at.get(), 0, "all-zero chain completes at t=0");
}

#[test]
fn run_until_counter_sees_partial_charges() {
    // run_until must charge running cores so snapshots between events are
    // exact (the accounting-truncation regression).
    let mut w = World::new(1);
    let h = w.add_host("h", 1, 1.0);
    let t = w.add_thread(h, "t");
    let a = w.add_actor(
        "hog",
        Hog {
            thread: t,
            burst: 100_000_000,
        },
    ); // 100ms burst
    w.send_now(a, Start);
    w.run_until(SimTime::from_nanos(30_000_000)); // mid-burst
    let busy = w.acct.busy_ns(t.index());
    assert!(
        (29_000_000..=30_000_001).contains(&busy),
        "mid-burst charge {busy} should be ~30ms"
    );
}

#[test]
fn many_short_wakeups_no_lost_work() {
    // Interleave many tiny chains across threads; everything completes.
    struct Count;
    struct Counter {
        n: std::rc::Rc<std::cell::Cell<u64>>,
    }
    impl Actor for Counter {
        fn handle(&mut self, msg: BoxMsg, _ctx: &mut Ctx<'_>) {
            if msg.is::<Count>() {
                self.n.set(self.n.get() + 1);
            }
        }
    }
    let mut w = World::new(9);
    let h = w.add_host("h", 3, 2.0);
    let ts: Vec<ThreadId> = (0..6).map(|i| w.add_thread(h, &format!("t{i}"))).collect();
    let n = std::rc::Rc::new(std::cell::Cell::new(0));
    let c = w.add_actor("counter", Counter { n: n.clone() });
    for i in 0..500 {
        let t1 = ts[i % 6];
        let t2 = ts[(i + 3) % 6];
        w.start_chain(
            vec![
                Stage::cpu(t1, 1_000 + (i as u64 % 7) * 100, CpuCategory::Other),
                Stage::cpu(t2, 500, CpuCategory::Other),
            ],
            c,
            Count,
        );
    }
    w.run();
    assert_eq!(n.get(), 500);
}

//! The physical/virtual topology: hosts, VMs and their shared state.
//!
//! [`Cluster`] lives on the world's extension blackboard
//! ([`vread_sim::ext::Extensions`]) so that actors (datanodes, clients,
//! the vRead daemon) can consult caches and filesystems synchronously
//! while building stage chains. Use [`with_cluster`] to borrow it and the
//! world at the same time.
//!
//! Each host owns one [`BlockStore`] shared by all of its VMs' images:
//! a plain [`PageCache`] in the default [`HostCacheMode::Lru`], or a
//! content-addressed [`crate::cas::CasStore`] in [`HostCacheMode::Cas`]
//! (identical blocks resident once, served by mapping). Guest caches are
//! always per-VM LRU — the guest kernel has no cross-VM visibility.

use std::collections::BTreeMap;

use vread_sim::prelude::*;
use vread_sim::resources::{BlockDev, Link};

use crate::cache::PageCache;
use crate::cas::CasStore;
use crate::costs::Costs;
use crate::fs::{GuestFs, ObjectId};
use crate::store::{BlockStore, ContentId};

/// Index of a host within a [`Cluster`] (distinct from the scheduler-level
/// [`HostId`], which it wraps).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct HostIx(pub usize);

/// Index of a VM within a [`Cluster`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VmId(pub usize);

/// Which [`BlockStore`] implementation hosts use.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum HostCacheMode {
    /// Per-image byte-for-byte LRU (the kernel page cache; default).
    #[default]
    Lru,
    /// Content-addressed shared store: identical blocks stored once.
    Cas,
}

/// One content binding of an image range, kept cluster-side so it can be
/// replayed into another host's store on VM migration.
#[derive(Debug, Clone, Copy)]
struct ContentBinding {
    image_offset: u64,
    len: u64,
    content: ContentId,
    content_offset: u64,
}

/// Hardware state of one physical host.
#[derive(Debug)]
pub struct HostHw {
    /// Scheduler-level host id.
    pub host: HostId,
    /// The host's SSD.
    pub dev: BlockDevId,
    /// Host block store (caches VM disk-image files; shared by the
    /// host's VMs).
    pub cache: Box<dyn BlockStore>,
    /// Egress NIC link towards the LAN (10 GbE, also carries RoCE).
    pub nic: LinkId,
    /// VMs placed on this host.
    pub vms: Vec<VmId>,
}

/// One virtual machine.
#[derive(Debug)]
pub struct Vm {
    /// Human-readable name ("client", "datanode1", …).
    pub name: String,
    /// The host this VM runs on.
    pub host: HostIx,
    /// The VM's single vCPU thread.
    pub vcpu: ThreadId,
    /// The VM's vhost-net I/O thread.
    pub vhost: ThreadId,
    /// Guest kernel page cache.
    pub cache: PageCache,
    /// Guest filesystem on the VM's virtual disk.
    pub fs: GuestFs,
}

/// The whole deployment: hosts, VMs, cost model.
#[derive(Debug, Default)]
pub struct Cluster {
    /// The cost model shared by every component.
    pub costs: Costs,
    /// Physical hosts.
    pub hosts: Vec<HostHw>,
    /// Virtual machines.
    pub vms: Vec<Vm>,
    next_object: u64,
    host_cache_mode: HostCacheMode,
    /// image object -> content bindings, for migration replay.
    bindings: BTreeMap<u64, Vec<ContentBinding>>,
}

impl Cluster {
    /// Creates an empty cluster with the given cost model (host caches
    /// default to [`HostCacheMode::Lru`]).
    pub fn new(costs: Costs) -> Self {
        Cluster {
            costs,
            hosts: Vec::new(),
            vms: Vec::new(),
            next_object: 0,
            host_cache_mode: HostCacheMode::default(),
            bindings: BTreeMap::new(),
        }
    }

    /// Selects the host block-store implementation. Call before
    /// [`Cluster::add_host`]; hosts already added keep their store.
    pub fn set_host_cache_mode(&mut self, mode: HostCacheMode) {
        self.host_cache_mode = mode;
    }

    /// The configured host block-store mode.
    pub fn host_cache_mode(&self) -> HostCacheMode {
        self.host_cache_mode
    }

    fn make_host_store(&self) -> Box<dyn BlockStore> {
        match self.host_cache_mode {
            HostCacheMode::Lru => Box::new(PageCache::new(
                self.costs.host_cache_bytes,
                self.costs.cache_chunk_bytes,
            )),
            HostCacheMode::Cas => Box::new(CasStore::new(
                self.costs.host_cache_bytes,
                self.costs.cache_chunk_bytes,
            )),
        }
    }

    /// Adds a physical host: registers cores/scheduler, SSD and NIC with
    /// the world and the hardware row here.
    pub fn add_host(&mut self, w: &mut World, name: &str, cores: usize, ghz: f64) -> HostIx {
        let host = w.add_host(name, cores, ghz);
        let dev = w.add_blockdev(BlockDev::new(
            SimDuration::from_nanos(self.costs.ssd_latency_ns),
            self.costs.ssd_bw_bps,
        ));
        let nic = w.add_link(Link::new(
            self.costs.nic_bw_bps,
            SimDuration::from_nanos(self.costs.lan_latency_ns),
        ));
        let ix = HostIx(self.hosts.len());
        self.hosts.push(HostHw {
            host,
            dev,
            cache: self.make_host_store(),
            nic,
            vms: Vec::new(),
        });
        ix
    }

    /// Adds a VM on `host`: one vCPU thread, one vhost-net thread, a guest
    /// page cache and a fresh filesystem on a new disk image.
    pub fn add_vm(&mut self, w: &mut World, host: HostIx, name: &str) -> VmId {
        let hw = &self.hosts[host.0];
        let vcpu = w.add_thread(hw.host, &format!("{name}/vcpu"));
        let vhost = w.add_thread(hw.host, &format!("{name}/vhost"));
        self.next_object += 1;
        let image = ObjectId::from_raw(self.next_object);
        let id = VmId(self.vms.len());
        self.vms.push(Vm {
            name: name.to_owned(),
            host,
            vcpu,
            vhost,
            cache: PageCache::new(self.costs.guest_cache_bytes, self.costs.cache_chunk_bytes),
            fs: GuestFs::new(image),
        });
        self.hosts[host.0].vms.push(id);
        id
    }

    /// The VM's row.
    pub fn vm(&self, vm: VmId) -> &Vm {
        &self.vms[vm.0]
    }

    /// Mutable access to a VM's row.
    pub fn vm_mut(&mut self, vm: VmId) -> &mut Vm {
        &mut self.vms[vm.0]
    }

    /// The hardware row of a VM's host.
    pub fn host_of(&self, vm: VmId) -> &HostHw {
        &self.hosts[self.vms[vm.0].host.0]
    }

    /// Whether two VMs share a physical host (the paper's "co-located").
    pub fn co_located(&self, a: VmId, b: VmId) -> bool {
        self.vms[a.0].host == self.vms[b.0].host
    }

    /// Declares that `[image_offset, image_offset+len)` of `vm`'s image
    /// holds `[content_offset, content_offset+len)` of `content`
    /// (typically an HDFS block file, identical across replicas). The
    /// binding is recorded cluster-wide (so migration can replay it) and
    /// forwarded to the VM's current host store; an LRU store ignores it.
    pub fn bind_content(
        &mut self,
        vm: VmId,
        image_offset: u64,
        len: u64,
        content: ContentId,
        content_offset: u64,
    ) {
        let obj = self.vms[vm.0].fs.image();
        let host = self.vms[vm.0].host;
        self.bindings
            .entry(obj.raw())
            .or_default()
            .push(ContentBinding {
                image_offset,
                len,
                content,
                content_offset,
            });
        self.hosts[host.0]
            .cache
            .bind(obj, image_offset, len, content, content_offset);
    }

    /// Live-migrates a VM to another host (paper §6: disk images live on
    /// centralized storage — NFS/iSCSI — so any host can serve them).
    /// The VM gets fresh vCPU/vhost threads on the target host; its guest
    /// page cache travels with it (memory is copied by live migration),
    /// while the target host's page cache starts cold for its image. The
    /// image's content bindings are replayed into the target host's
    /// store, so dedup keeps working after migration.
    pub fn migrate_vm(&mut self, w: &mut World, vm: VmId, to: HostIx) {
        let from = self.vms[vm.0].host;
        if from == to {
            return;
        }
        let name = self.vms[vm.0].name.clone();
        let host_id = self.hosts[to.0].host;
        let vcpu = w.add_thread(host_id, &format!("{name}/vcpu@{}", to.0));
        let vhost = w.add_thread(host_id, &format!("{name}/vhost@{}", to.0));
        let v = &mut self.vms[vm.0];
        v.host = to;
        v.vcpu = vcpu;
        v.vhost = vhost;
        self.hosts[from.0].vms.retain(|&x| x != vm);
        self.hosts[to.0].vms.push(vm);
        let obj = self.vms[vm.0].fs.image();
        if let Some(binds) = self.bindings.get(&obj.raw()) {
            for b in binds.clone() {
                self.hosts[to.0].cache.bind(
                    obj,
                    b.image_offset,
                    b.len,
                    b.content,
                    b.content_offset,
                );
            }
        }
    }

    /// Clears the guest page cache of a VM (guest `drop_caches`).
    pub fn clear_guest_cache(&mut self, vm: VmId) {
        self.vms[vm.0].cache.clear();
    }

    /// Clears a host's page cache (host `drop_caches`).
    pub fn clear_host_cache(&mut self, host: HostIx) {
        self.hosts[host.0].cache.clear();
    }

    /// Clears every cache in the deployment (the paper's "read without
    /// cache" preparation).
    pub fn clear_all_caches(&mut self) {
        for vm in &mut self.vms {
            vm.cache.clear();
        }
        for h in &mut self.hosts {
            h.cache.clear();
        }
    }
}

/// Borrows the cluster out of the world's extension blackboard and runs
/// `f` with simultaneous access to both.
///
/// # Panics
///
/// Panics if no [`Cluster`] was installed (scenario builders insert one).
pub fn with_cluster<R>(w: &mut World, f: impl FnOnce(&mut Cluster, &mut World) -> R) -> R {
    let mut cl = w
        .ext
        .remove::<Cluster>()
        .expect("Cluster not installed in world extensions");
    let r = f(&mut cl, w);
    w.ext.insert(cl);
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_two_host_topology() {
        let mut w = World::new(1);
        let mut cl = Cluster::new(Costs::default());
        let h1 = cl.add_host(&mut w, "host1", 4, 3.2);
        let h2 = cl.add_host(&mut w, "host2", 4, 3.2);
        let client = cl.add_vm(&mut w, h1, "client");
        let dn1 = cl.add_vm(&mut w, h1, "datanode1");
        let dn2 = cl.add_vm(&mut w, h2, "datanode2");
        assert!(cl.co_located(client, dn1));
        assert!(!cl.co_located(client, dn2));
        assert_eq!(cl.hosts[h1.0].vms.len(), 2);
        assert_ne!(cl.vm(client).fs.image(), cl.vm(dn1).fs.image());
        assert_ne!(cl.vm(client).vcpu, cl.vm(client).vhost);
        assert_eq!(w.host_cores(cl.hosts[h1.0].host), 4);
    }

    #[test]
    fn with_cluster_roundtrips() {
        let mut w = World::new(1);
        w.ext.insert(Cluster::new(Costs::default()));
        with_cluster(&mut w, |cl, w| {
            let h = cl.add_host(w, "h", 2, 2.0);
            cl.add_vm(w, h, "vm");
        });
        assert_eq!(w.ext.get::<Cluster>().unwrap().vms.len(), 1);
    }

    #[test]
    fn cache_clearing() {
        let mut w = World::new(1);
        let mut cl = Cluster::new(Costs::default());
        let h = cl.add_host(&mut w, "h", 2, 2.0);
        let vm = cl.add_vm(&mut w, h, "vm");
        let obj = cl.vm(vm).fs.image();
        cl.vm_mut(vm).cache.admit(obj, 0, 65536);
        cl.hosts[h.0].cache.admit(obj, 0, 65536);
        cl.clear_all_caches();
        assert_eq!(cl.vm(vm).cache.used_bytes(), 0);
        assert_eq!(cl.hosts[h.0].cache.used_bytes(), 0);
    }

    #[test]
    fn cas_mode_hosts_dedup_across_images() {
        let mut w = World::new(1);
        let mut cl = Cluster::new(Costs::default());
        cl.set_host_cache_mode(HostCacheMode::Cas);
        let h = cl.add_host(&mut w, "h", 4, 2.0);
        let dn1 = cl.add_vm(&mut w, h, "dn1");
        let dn2 = cl.add_vm(&mut w, h, "dn2");
        assert!(cl.hosts[h.0].cache.content_addressed());
        let cid = ContentId::from_path("/hdfs/data/blk_1");
        cl.bind_content(dn1, 0, 1 << 20, cid, 0);
        cl.bind_content(dn2, 0, 1 << 20, cid, 0);
        let o1 = cl.vm(dn1).fs.image();
        let o2 = cl.vm(dn2).fs.image();
        cl.hosts[h.0].cache.admit(o1, 0, 1 << 20);
        let l = cl.hosts[h.0].cache.lookup(o2, 0, 1 << 20);
        assert_eq!(l.miss_bytes, 0);
        assert_eq!(l.dedup_bytes, 1 << 20);
        assert_eq!(cl.hosts[h.0].cache.used_bytes(), 1 << 20);
        assert_eq!(cl.hosts[h.0].cache.logical_bytes(), 2 << 20);
    }

    #[test]
    fn migration_replays_content_bindings() {
        let mut w = World::new(1);
        let mut cl = Cluster::new(Costs::default());
        cl.set_host_cache_mode(HostCacheMode::Cas);
        let h1 = cl.add_host(&mut w, "h1", 4, 2.0);
        let h2 = cl.add_host(&mut w, "h2", 4, 2.0);
        let dn1 = cl.add_vm(&mut w, h1, "dn1");
        let dn2 = cl.add_vm(&mut w, h2, "dn2");
        let cid = ContentId::from_path("/hdfs/data/blk_9");
        cl.bind_content(dn1, 0, 65536, cid, 0);
        cl.bind_content(dn2, 4096, 65536, cid, 0);
        // dn2's host already holds the content (via dn2's own reads).
        let o2 = cl.vm(dn2).fs.image();
        cl.hosts[h2.0].cache.admit(o2, 4096, 65536);
        // Migrate dn1 to h2; its binding must follow so its reads dedup.
        cl.migrate_vm(&mut w, dn1, h2);
        let o1 = cl.vm(dn1).fs.image();
        let l = cl.hosts[h2.0].cache.lookup(o1, 0, 65536);
        assert_eq!(l.miss_bytes, 0);
        assert_eq!(l.dedup_bytes, 65536);
    }
}

//! The host block-store API: typed lookups, admissions and statistics.
//!
//! PR 7 redesigns the host-cache surface. The old interface was three
//! free-form calls (`missing_bytes` / `insert_range` / `covers`) plus
//! public counter fields; every call site re-derived what the outcome
//! *meant*. [`BlockStore`] makes the outcome a value: [`Lookup`] says how
//! many bytes hit, hit **via dedup** (resident because another co-located
//! VM admitted identical content) or missed, and [`Admission`] classifies
//! an insert. Two implementations exist:
//!
//! * [`crate::cache::PageCache`] — the byte-capacity LRU used by guests
//!   and (by default) hosts; never dedups, so `dedup_bytes` is always 0;
//! * [`crate::cas::CasStore`] — the content-addressed shared store:
//!   ranges bound to a [`ContentId`] are keyed by content, so HDFS
//!   replicas and shared files occupy physical capacity once.
//!
//! Everything is deterministic: no wall clock, no unordered iteration,
//! and the stores live per-host inside [`crate::Cluster`], i.e. inside
//! one shard of the parallel engine.

use crate::fs::ObjectId;

/// Identity of a byte sequence independent of which disk image holds it.
///
/// The simulator does not materialize data bytes, so content identity is
/// derived from what *determines* the bytes: for HDFS block files the
/// block path (replicas of block N contain identical bytes on every
/// datanode, and all datanodes store block N under the same path).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ContentId(u64);

impl ContentId {
    /// Derives a content id from a path (FNV-1a; no ambient entropy, so
    /// ids are stable across runs and processes).
    pub fn from_path(path: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in path.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        ContentId(h)
    }

    /// Constructs from a raw id (tests).
    pub const fn from_raw(raw: u64) -> Self {
        ContentId(raw)
    }

    /// The raw id.
    pub const fn raw(self) -> u64 {
        self.0
    }
}

/// Typed outcome of admitting a range into a store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Every chunk was already resident and owned by this object.
    Hit,
    /// Every chunk was resident, at least one only via content shared
    /// with another object (dedup).
    HitDedup,
    /// At least one chunk had to be brought in.
    Miss,
}

/// Byte-granular outcome of a [`BlockStore::lookup`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Lookup {
    /// Bytes resident and admitted via this object.
    pub hit_bytes: u64,
    /// Bytes resident only because identical content was admitted via a
    /// *different* object (always 0 for an LRU store).
    pub dedup_bytes: u64,
    /// Bytes not resident (whole missing chunks counted in full, which
    /// models read-ahead at chunk granularity).
    pub miss_bytes: u64,
}

impl Lookup {
    /// Collapses the byte counts into the typed admission outcome.
    pub fn admission(&self) -> Admission {
        if self.miss_bytes > 0 {
            Admission::Miss
        } else if self.dedup_bytes > 0 {
            Admission::HitDedup
        } else {
            Admission::Hit
        }
    }
}

/// Hit/miss counters, chunk-granular (one count per chunk consulted).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Chunks found resident (includes `dedup_hits`).
    pub hits: u64,
    /// Chunks not resident.
    pub misses: u64,
    /// Subset of `hits` served by content another object admitted.
    pub dedup_hits: u64,
}

impl CacheStats {
    /// `hits / (hits + misses)`, or 0 when nothing was looked up.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A byte-capacity block store tracking fixed-size chunks of objects.
///
/// Implementations must be deterministic: identical call sequences yield
/// identical outcomes, statistics and eviction order.
pub trait BlockStore: std::fmt::Debug {
    /// Classifies residency of `[offset, offset+len)` of `obj`, updating
    /// statistics and the recency of resident chunks.
    fn lookup(&mut self, obj: ObjectId, offset: u64, len: u64) -> Lookup;

    /// Whether the whole range is resident (no statistics, no touch).
    fn probe(&self, obj: ObjectId, offset: u64, len: u64) -> bool;

    /// Brings the range in (evicting as needed) or refreshes it.
    fn admit(&mut self, obj: ObjectId, offset: u64, len: u64) -> Admission;

    /// Evicts least-recently-used chunks until `bytes` more fit.
    fn evict_to_fit(&mut self, bytes: u64);

    /// Declares that `[image_offset, image_offset+len)` of `obj` holds
    /// the bytes at `[content_offset, content_offset+len)` of `content`.
    /// Stores without content addressing ignore this (default no-op).
    fn bind(
        &mut self,
        _obj: ObjectId,
        _image_offset: u64,
        _len: u64,
        _content: ContentId,
        _content_offset: u64,
    ) {
    }

    /// Drops every cached chunk attributable to `obj`.
    fn evict_object(&mut self, obj: ObjectId);

    /// Empties the store (the paper's `drop_caches`); bindings and
    /// statistics survive.
    fn clear(&mut self);

    /// Physical bytes currently resident.
    fn used_bytes(&self) -> u64;

    /// Logical bytes served: object-visible resident bytes, counting a
    /// physical chunk once per object that can see it. Equal to
    /// [`BlockStore::used_bytes`] without dedup; larger with it — the
    /// ratio is the effective-capacity multiplier.
    fn logical_bytes(&self) -> u64;

    /// Configured capacity in bytes.
    fn capacity_bytes(&self) -> u64;

    /// Hit/miss/dedup counters.
    fn stats(&self) -> CacheStats;

    /// Whether the store dedups by content (drives the hash-cost charge
    /// on admission and the map-serve fast path in the daemon).
    fn content_addressed(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn content_id_is_stable_and_path_sensitive() {
        let a = ContentId::from_path("/hdfs/data/blk_1");
        let b = ContentId::from_path("/hdfs/data/blk_1");
        let c = ContentId::from_path("/hdfs/data/blk_2");
        assert_eq!(a, b);
        assert_ne!(a, c);
        // FNV-1a of an empty string is the offset basis.
        assert_eq!(ContentId::from_path("").raw(), 0xcbf2_9ce4_8422_2325);
    }

    #[test]
    fn lookup_collapses_to_admission() {
        let hit = Lookup {
            hit_bytes: 4096,
            ..Lookup::default()
        };
        assert_eq!(hit.admission(), Admission::Hit);
        let dedup = Lookup {
            hit_bytes: 4096,
            dedup_bytes: 4096,
            miss_bytes: 0,
        };
        assert_eq!(dedup.admission(), Admission::HitDedup);
        let miss = Lookup {
            miss_bytes: 1,
            ..Lookup::default()
        };
        assert_eq!(miss.admission(), Admission::Miss);
    }

    #[test]
    fn hit_ratio_handles_empty() {
        assert_eq!(CacheStats::default().hit_ratio(), 0.0);
        let s = CacheStats {
            hits: 3,
            misses: 1,
            dedup_hits: 2,
        };
        assert!((s.hit_ratio() - 0.75).abs() < 1e-12);
    }
}

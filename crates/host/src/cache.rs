//! Byte-capacity LRU page caches.
//!
//! Both guest kernels and the host kernel cache file data. The cache
//! tracks fixed-size chunks of *objects* (an object is a disk image; the
//! offset space of a VM's files lives inside its image), evicting least
//! recently used chunks when capacity is exceeded.
//!
//! Whether a read hits DRAM or the SSD is the entire difference between
//! the paper's *read* and *re-read* experiments, and host-cache hits are
//! why vRead's mounted-image design (§6 "Direct Read Bypassing the File
//! System in the Host") out-performs a raw-device bypass.

use std::collections::{BTreeMap, HashMap};

use crate::fs::ObjectId;

/// Key of one cached chunk: `(object, chunk index)`.
type ChunkKey = (u64, u64);

/// An LRU page cache with byte capacity.
///
/// ```rust
/// use vread_host::cache::PageCache;
/// use vread_host::fs::ObjectId;
///
/// let mut cache = PageCache::new(1 << 20, 4096);
/// let img = ObjectId::from_raw(1);
/// assert_eq!(cache.missing_bytes(img, 0, 8192), 8192); // cold
/// cache.insert_range(img, 0, 8192);
/// assert!(cache.covers(img, 0, 8192)); // re-read hits DRAM
/// ```
#[derive(Debug, Clone)]
pub struct PageCache {
    capacity: u64,
    chunk: u64,
    used: u64,
    tick: u64,
    /// chunk -> last-use tick
    map: HashMap<ChunkKey, u64>,
    /// last-use tick -> chunk (ticks are unique)
    order: BTreeMap<u64, ChunkKey>,
    /// Statistics: hits/misses observed by [`PageCache::missing_bytes`].
    pub hits: u64,
    /// Statistics: miss count.
    pub misses: u64,
}

impl PageCache {
    /// Creates a cache of `capacity` bytes tracking `chunk`-byte chunks.
    ///
    /// # Panics
    ///
    /// Panics if `chunk` is zero or larger than `capacity` (a cache that
    /// cannot hold one chunk is a configuration error).
    pub fn new(capacity: u64, chunk: u64) -> Self {
        assert!(chunk > 0, "chunk size must be positive");
        assert!(capacity >= chunk, "capacity smaller than one chunk");
        PageCache {
            capacity,
            chunk,
            used: 0,
            tick: 0,
            map: HashMap::new(),
            order: BTreeMap::new(),
            hits: 0,
            misses: 0,
        }
    }

    fn chunks_of(&self, offset: u64, len: u64) -> std::ops::Range<u64> {
        if len == 0 {
            return 0..0;
        }
        let first = offset / self.chunk;
        let last = (offset + len - 1) / self.chunk;
        first..last + 1
    }

    /// How many bytes of `[offset, offset+len)` of `obj` are *not* cached
    /// (whole missing chunks counted in full, which models read-ahead at
    /// chunk granularity). Updates hit/miss statistics and LRU order of
    /// present chunks.
    pub fn missing_bytes(&mut self, obj: ObjectId, offset: u64, len: u64) -> u64 {
        let mut missing = 0u64;
        for ci in self.chunks_of(offset, len) {
            let key = (obj.raw(), ci);
            if self.map.contains_key(&key) {
                self.touch(key);
                self.hits += 1;
            } else {
                self.misses += 1;
                missing += self.chunk;
            }
        }
        missing
    }

    /// Whether the whole range is cached (does not update statistics).
    pub fn covers(&self, obj: ObjectId, offset: u64, len: u64) -> bool {
        self.chunks_of(offset, len)
            .all(|ci| self.map.contains_key(&(obj.raw(), ci)))
    }

    /// Inserts (or refreshes) the chunks covering the range, evicting LRU
    /// chunks as needed.
    pub fn insert_range(&mut self, obj: ObjectId, offset: u64, len: u64) {
        for ci in self.chunks_of(offset, len) {
            let key = (obj.raw(), ci);
            if self.map.contains_key(&key) {
                self.touch(key);
            } else {
                self.insert_chunk(key);
            }
        }
    }

    /// Drops every cached chunk of `obj` (e.g. `fadvise DONTNEED`).
    ///
    /// Walks the ordered LRU index rather than the hash map so the
    /// drop order is deterministic (and lint-clean by construction).
    pub fn evict_object(&mut self, obj: ObjectId) {
        let victims: Vec<(u64, ChunkKey)> = self
            .order
            .iter()
            .filter(|(_, k)| k.0 == obj.raw())
            .map(|(&tick, &k)| (tick, k))
            .collect();
        for (tick, k) in victims {
            self.order.remove(&tick);
            self.map.remove(&k).expect("order/map out of sync");
            self.used -= self.chunk;
        }
    }

    /// Empties the cache (the paper's `drop_caches` between runs).
    pub fn clear(&mut self) {
        self.map.clear();
        self.order.clear();
        self.used = 0;
    }

    /// Bytes currently cached.
    pub fn used_bytes(&self) -> u64 {
        self.used
    }

    /// Configured capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.capacity
    }

    fn touch(&mut self, key: ChunkKey) {
        let old = self.map[&key];
        self.order.remove(&old);
        self.tick += 1;
        self.map.insert(key, self.tick);
        self.order.insert(self.tick, key);
    }

    fn insert_chunk(&mut self, key: ChunkKey) {
        while self.used + self.chunk > self.capacity {
            let (&tick, &victim) = self.order.iter().next().expect("cache over-full but empty");
            self.order.remove(&tick);
            self.map.remove(&victim);
            self.used -= self.chunk;
        }
        self.tick += 1;
        self.map.insert(key, self.tick);
        self.order.insert(self.tick, key);
        self.used += self.chunk;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj(n: u64) -> ObjectId {
        ObjectId::from_raw(n)
    }

    #[test]
    fn miss_then_hit() {
        let mut c = PageCache::new(1 << 20, 4096);
        assert_eq!(c.missing_bytes(obj(1), 0, 8192), 8192);
        c.insert_range(obj(1), 0, 8192);
        assert_eq!(c.missing_bytes(obj(1), 0, 8192), 0);
        assert!(c.covers(obj(1), 0, 8192));
        assert_eq!(c.used_bytes(), 8192);
    }

    #[test]
    fn partial_coverage() {
        let mut c = PageCache::new(1 << 20, 4096);
        c.insert_range(obj(1), 0, 4096);
        // second chunk missing
        assert_eq!(c.missing_bytes(obj(1), 0, 8192), 4096);
        assert!(!c.covers(obj(1), 0, 8192));
    }

    #[test]
    fn unaligned_ranges_cover_their_chunks() {
        let mut c = PageCache::new(1 << 20, 4096);
        c.insert_range(obj(1), 100, 1); // touches chunk 0
        assert!(c.covers(obj(1), 0, 10));
        assert!(!c.covers(obj(1), 4096, 1));
        // range straddling a boundary needs both chunks
        c.insert_range(obj(1), 4000, 200);
        assert!(c.covers(obj(1), 4000, 200));
        assert_eq!(c.used_bytes(), 2 * 4096);
    }

    #[test]
    fn lru_evicts_oldest() {
        let mut c = PageCache::new(3 * 4096, 4096);
        c.insert_range(obj(1), 0, 4096); // chunk 0
        c.insert_range(obj(1), 4096, 4096); // chunk 1
        c.insert_range(obj(1), 8192, 4096); // chunk 2
                                            // touch chunk 0 so chunk 1 is LRU
        assert_eq!(c.missing_bytes(obj(1), 0, 4096), 0);
        c.insert_range(obj(1), 12288, 4096); // chunk 3 evicts chunk 1
        assert!(c.covers(obj(1), 0, 4096));
        assert!(!c.covers(obj(1), 4096, 4096));
        assert!(c.covers(obj(1), 8192, 4096));
        assert!(c.covers(obj(1), 12288, 4096));
        assert_eq!(c.used_bytes(), 3 * 4096);
    }

    #[test]
    fn capacity_never_exceeded() {
        let mut c = PageCache::new(10 * 4096, 4096);
        for i in 0..100 {
            c.insert_range(obj(1), i * 4096, 4096);
            assert!(c.used_bytes() <= c.capacity_bytes());
        }
        assert_eq!(c.used_bytes(), 10 * 4096);
    }

    #[test]
    fn objects_are_disjoint() {
        let mut c = PageCache::new(1 << 20, 4096);
        c.insert_range(obj(1), 0, 4096);
        assert_eq!(c.missing_bytes(obj(2), 0, 4096), 4096);
        c.insert_range(obj(2), 0, 4096);
        c.evict_object(obj(1));
        assert!(!c.covers(obj(1), 0, 4096));
        assert!(c.covers(obj(2), 0, 4096));
        assert_eq!(c.used_bytes(), 4096);
    }

    #[test]
    fn clear_resets() {
        let mut c = PageCache::new(1 << 20, 4096);
        c.insert_range(obj(1), 0, 65536);
        c.clear();
        assert_eq!(c.used_bytes(), 0);
        assert!(!c.covers(obj(1), 0, 4096));
    }

    #[test]
    fn zero_length_range_is_fully_cached() {
        let mut c = PageCache::new(1 << 20, 4096);
        assert_eq!(c.missing_bytes(obj(1), 500, 0), 0);
        assert!(c.covers(obj(1), 500, 0));
    }
}

//! Byte-capacity LRU page caches.
//!
//! Both guest kernels and the host kernel cache file data. The cache
//! tracks fixed-size chunks of *objects* (an object is a disk image; the
//! offset space of a VM's files lives inside its image), evicting least
//! recently used chunks when capacity is exceeded.
//!
//! Whether a read hits DRAM or the SSD is the entire difference between
//! the paper's *read* and *re-read* experiments, and host-cache hits are
//! why vRead's mounted-image design (§6 "Direct Read Bypassing the File
//! System in the Host") out-performs a raw-device bypass.
//!
//! [`PageCache`] is the [`BlockStore`] used by every guest and, in the
//! default `lru` host-cache mode, by hosts; the content-addressed
//! alternative is [`crate::cas::CasStore`].

use std::collections::{BTreeMap, HashMap};

use crate::fs::ObjectId;
use crate::store::{Admission, BlockStore, CacheStats, Lookup};

/// Key of one cached chunk: `(object, chunk index)`.
type ChunkKey = (u64, u64);

/// An LRU page cache with byte capacity.
///
/// ```rust
/// use vread_host::cache::PageCache;
/// use vread_host::fs::ObjectId;
/// use vread_host::store::BlockStore;
///
/// let mut cache = PageCache::new(1 << 20, 4096);
/// let img = ObjectId::from_raw(1);
/// assert_eq!(cache.lookup(img, 0, 8192).miss_bytes, 8192); // cold
/// cache.admit(img, 0, 8192);
/// assert!(cache.probe(img, 0, 8192)); // re-read hits DRAM
/// ```
#[derive(Debug, Clone)]
pub struct PageCache {
    capacity: u64,
    chunk: u64,
    used: u64,
    tick: u64,
    /// chunk -> last-use tick
    map: HashMap<ChunkKey, u64>,
    /// last-use tick -> chunk (ticks are unique)
    order: BTreeMap<u64, ChunkKey>,
    stats: CacheStats,
}

impl PageCache {
    /// Creates a cache of `capacity` bytes tracking `chunk`-byte chunks.
    ///
    /// # Panics
    ///
    /// Panics if `chunk` is zero or larger than `capacity` (a cache that
    /// cannot hold one chunk is a configuration error).
    pub fn new(capacity: u64, chunk: u64) -> Self {
        assert!(chunk > 0, "chunk size must be positive");
        assert!(capacity >= chunk, "capacity smaller than one chunk");
        PageCache {
            capacity,
            chunk,
            used: 0,
            tick: 0,
            map: HashMap::new(),
            order: BTreeMap::new(),
            stats: CacheStats::default(),
        }
    }

    fn chunks_of(&self, offset: u64, len: u64) -> std::ops::Range<u64> {
        if len == 0 {
            return 0..0;
        }
        let first = offset / self.chunk;
        let last = (offset + len - 1) / self.chunk;
        first..last + 1
    }

    fn touch(&mut self, key: ChunkKey) {
        let old = self.map[&key];
        self.order.remove(&old);
        self.tick += 1;
        self.map.insert(key, self.tick);
        self.order.insert(self.tick, key);
    }

    fn insert_chunk(&mut self, key: ChunkKey) {
        while self.used + self.chunk > self.capacity {
            let (&tick, &victim) = self.order.iter().next().expect("cache over-full but empty");
            self.order.remove(&tick);
            self.map.remove(&victim);
            self.used -= self.chunk;
        }
        self.tick += 1;
        self.map.insert(key, self.tick);
        self.order.insert(self.tick, key);
        self.used += self.chunk;
    }
}

impl BlockStore for PageCache {
    /// Classifies residency (whole missing chunks counted in full, which
    /// models read-ahead at chunk granularity). Updates statistics and
    /// the LRU order of present chunks. An LRU cache never dedups, so
    /// `dedup_bytes` is always 0.
    fn lookup(&mut self, obj: ObjectId, offset: u64, len: u64) -> Lookup {
        let mut out = Lookup::default();
        for ci in self.chunks_of(offset, len) {
            let key = (obj.raw(), ci);
            if self.map.contains_key(&key) {
                self.touch(key);
                self.stats.hits += 1;
                out.hit_bytes += self.chunk;
            } else {
                self.stats.misses += 1;
                out.miss_bytes += self.chunk;
            }
        }
        out
    }

    fn probe(&self, obj: ObjectId, offset: u64, len: u64) -> bool {
        self.chunks_of(offset, len)
            .all(|ci| self.map.contains_key(&(obj.raw(), ci)))
    }

    /// Inserts (or refreshes) the chunks covering the range, evicting LRU
    /// chunks as needed.
    fn admit(&mut self, obj: ObjectId, offset: u64, len: u64) -> Admission {
        let mut any_miss = false;
        for ci in self.chunks_of(offset, len) {
            let key = (obj.raw(), ci);
            if self.map.contains_key(&key) {
                self.touch(key);
            } else {
                any_miss = true;
                self.insert_chunk(key);
            }
        }
        if any_miss {
            Admission::Miss
        } else {
            Admission::Hit
        }
    }

    fn evict_to_fit(&mut self, bytes: u64) {
        let budget = self.capacity.saturating_sub(bytes);
        while self.used > budget {
            let Some((&tick, &victim)) = self.order.iter().next() else {
                return;
            };
            self.order.remove(&tick);
            self.map.remove(&victim);
            self.used -= self.chunk;
        }
    }

    /// Drops every cached chunk of `obj` (e.g. `fadvise DONTNEED`).
    ///
    /// Walks the ordered LRU index rather than the hash map so the
    /// drop order is deterministic (and lint-clean by construction).
    fn evict_object(&mut self, obj: ObjectId) {
        let victims: Vec<(u64, ChunkKey)> = self
            .order
            .iter()
            .filter(|(_, k)| k.0 == obj.raw())
            .map(|(&tick, &k)| (tick, k))
            .collect();
        for (tick, k) in victims {
            self.order.remove(&tick);
            self.map.remove(&k).expect("order/map out of sync");
            self.used -= self.chunk;
        }
    }

    /// Empties the cache (the paper's `drop_caches` between runs).
    fn clear(&mut self) {
        self.map.clear();
        self.order.clear();
        self.used = 0;
    }

    fn used_bytes(&self) -> u64 {
        self.used
    }

    fn logical_bytes(&self) -> u64 {
        self.used
    }

    fn capacity_bytes(&self) -> u64 {
        self.capacity
    }

    fn stats(&self) -> CacheStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj(n: u64) -> ObjectId {
        ObjectId::from_raw(n)
    }

    #[test]
    fn miss_then_hit() {
        let mut c = PageCache::new(1 << 20, 4096);
        assert_eq!(c.lookup(obj(1), 0, 8192).miss_bytes, 8192);
        c.admit(obj(1), 0, 8192);
        let l = c.lookup(obj(1), 0, 8192);
        assert_eq!(l.miss_bytes, 0);
        assert_eq!(l.hit_bytes, 8192);
        assert_eq!(l.dedup_bytes, 0, "LRU never dedups");
        assert!(c.probe(obj(1), 0, 8192));
        assert_eq!(c.used_bytes(), 8192);
        assert_eq!(c.logical_bytes(), 8192);
        assert_eq!(
            c.stats(),
            CacheStats {
                hits: 2,
                misses: 2,
                dedup_hits: 0
            }
        );
    }

    #[test]
    fn partial_coverage() {
        let mut c = PageCache::new(1 << 20, 4096);
        c.admit(obj(1), 0, 4096);
        // second chunk missing
        assert_eq!(c.lookup(obj(1), 0, 8192).miss_bytes, 4096);
        assert!(!c.probe(obj(1), 0, 8192));
        assert_eq!(c.lookup(obj(1), 0, 8192).admission(), Admission::Miss);
    }

    #[test]
    fn unaligned_ranges_cover_their_chunks() {
        let mut c = PageCache::new(1 << 20, 4096);
        c.admit(obj(1), 100, 1); // touches chunk 0
        assert!(c.probe(obj(1), 0, 10));
        assert!(!c.probe(obj(1), 4096, 1));
        // range straddling a boundary needs both chunks
        c.admit(obj(1), 4000, 200);
        assert!(c.probe(obj(1), 4000, 200));
        assert_eq!(c.used_bytes(), 2 * 4096);
    }

    #[test]
    fn lru_evicts_oldest() {
        let mut c = PageCache::new(3 * 4096, 4096);
        c.admit(obj(1), 0, 4096); // chunk 0
        c.admit(obj(1), 4096, 4096); // chunk 1
        c.admit(obj(1), 8192, 4096); // chunk 2
                                     // touch chunk 0 so chunk 1 is LRU
        assert_eq!(c.lookup(obj(1), 0, 4096).miss_bytes, 0);
        c.admit(obj(1), 12288, 4096); // chunk 3 evicts chunk 1
        assert!(c.probe(obj(1), 0, 4096));
        assert!(!c.probe(obj(1), 4096, 4096));
        assert!(c.probe(obj(1), 8192, 4096));
        assert!(c.probe(obj(1), 12288, 4096));
        assert_eq!(c.used_bytes(), 3 * 4096);
    }

    /// Regression test pinning eviction order exactly: ticks are unique
    /// (the tick counter increments on every touch/insert), so LRU ties
    /// are impossible by construction and the eviction sequence is fully
    /// determined by the access sequence. If `insert_range`-era tie
    /// behavior ever resurfaces (multiple chunks sharing a tick, order
    /// then depending on BTreeMap key layout), this test fails.
    #[test]
    fn eviction_order_is_pinned_by_unique_ticks() {
        let mut c = PageCache::new(4 * 4096, 4096);
        // Admit chunks 0..4 in one call: internal order must be 0,1,2,3.
        c.admit(obj(1), 0, 4 * 4096);
        // Touch 1 then 0: LRU order now 2,3,1,0.
        c.admit(obj(1), 4096, 4096);
        c.admit(obj(1), 0, 4096);
        // Each new chunk evicts exactly the predicted victim.
        let expect_victims = [8192u64, 12288, 4096, 0];
        for (i, &victim) in expect_victims.iter().enumerate() {
            let fresh = (4 + i as u64) * 4096;
            c.admit(obj(1), fresh, 4096);
            assert!(
                !c.probe(obj(1), victim, 4096),
                "admitting chunk {} must evict offset {victim}",
                4 + i
            );
            assert_eq!(c.used_bytes(), 4 * 4096);
        }
    }

    #[test]
    fn evict_to_fit_frees_exactly_enough() {
        let mut c = PageCache::new(4 * 4096, 4096);
        c.admit(obj(1), 0, 4 * 4096);
        c.evict_to_fit(2 * 4096);
        assert_eq!(c.used_bytes(), 2 * 4096);
        // Oldest two chunks went first.
        assert!(!c.probe(obj(1), 0, 4096));
        assert!(!c.probe(obj(1), 4096, 4096));
        assert!(c.probe(obj(1), 8192, 2 * 4096));
        // Asking for more than capacity empties the cache and stops.
        c.evict_to_fit(1 << 30);
        assert_eq!(c.used_bytes(), 0);
    }

    #[test]
    fn capacity_never_exceeded() {
        let mut c = PageCache::new(10 * 4096, 4096);
        for i in 0..100 {
            c.admit(obj(1), i * 4096, 4096);
            assert!(c.used_bytes() <= c.capacity_bytes());
        }
        assert_eq!(c.used_bytes(), 10 * 4096);
    }

    #[test]
    fn objects_are_disjoint() {
        let mut c = PageCache::new(1 << 20, 4096);
        c.admit(obj(1), 0, 4096);
        assert_eq!(c.lookup(obj(2), 0, 4096).miss_bytes, 4096);
        c.admit(obj(2), 0, 4096);
        c.evict_object(obj(1));
        assert!(!c.probe(obj(1), 0, 4096));
        assert!(c.probe(obj(2), 0, 4096));
        assert_eq!(c.used_bytes(), 4096);
    }

    #[test]
    fn clear_resets() {
        let mut c = PageCache::new(1 << 20, 4096);
        c.admit(obj(1), 0, 65536);
        c.clear();
        assert_eq!(c.used_bytes(), 0);
        assert!(!c.probe(obj(1), 0, 4096));
    }

    #[test]
    fn zero_length_range_is_fully_cached() {
        let mut c = PageCache::new(1 << 20, 4096);
        assert_eq!(c.lookup(obj(1), 500, 0).miss_bytes, 0);
        assert!(c.probe(obj(1), 500, 0));
    }
}

//! The cost model: every per-operation CPU cost in one place.
//!
//! All values are **cycles** (or cycles per byte), so a host's clock
//! frequency — the paper varies it between 1.6 and 3.2 GHz with
//! `cpufreq-set` — scales everything coherently. Values are drawn from
//! published measurements of the 2012–2015 era (Xeon + Linux 3.x + KVM
//! virtio) and calibrated against the paper's vanilla baselines (see
//! EXPERIMENTS.md); the vRead-vs-vanilla *ratios* are emergent.

/// Per-operation CPU costs and device parameters.
///
/// ```rust
/// use vread_host::costs::Costs;
///
/// let mut costs = Costs::default();
/// // the paper's low-power-CPU experiments only change the clock, so
/// // everything here stays in cycles:
/// assert_eq!(costs.copy_cycles(1 << 20), 524_288); // 0.5 cyc/B
/// costs.ring_slot_bytes = 16 << 10;                // ablation knob
/// ```
#[derive(Debug, Clone)]
pub struct Costs {
    // -- memory ----------------------------------------------------------
    /// Plain memcpy cost, cycles per byte (hot-ish caches).
    pub memcpy_cyc_per_byte: f64,

    // -- kernel entry/exit -------------------------------------------------
    /// System call entry + exit.
    pub syscall_cycles: u64,
    /// VM exit + re-entry (hardware vmexit round trip + KVM handling).
    pub vmexit_cycles: u64,
    /// A virtio "kick": vmexit + notify the backend.
    pub virtio_kick_cycles: u64,
    /// Injecting a virtual interrupt into a guest.
    pub irq_inject_cycles: u64,

    // -- virtio-blk ---------------------------------------------------------
    /// Guest-side block request submission (bio + vring descriptor setup).
    pub blk_submit_cycles: u64,
    /// Host-side block request handling (request parse, aio submit).
    pub blk_host_cycles: u64,
    /// Guest-side completion handling.
    pub blk_complete_cycles: u64,

    // -- TCP ----------------------------------------------------------------
    /// Guest TCP transmit processing, per (TSO) segment.
    pub tcp_tx_segment_cycles: u64,
    /// Guest TCP receive processing, per (TSO/LRO) segment.
    pub tcp_rx_segment_cycles: u64,
    /// Host kernel TCP processing per segment (physical NIC path).
    pub host_tcp_segment_cycles: u64,
    /// Extra guest TCP cost per byte (checksum touch, skb management).
    pub tcp_cyc_per_byte: f64,
    /// TSO segment size in bytes.
    pub tso_bytes: u64,
    /// TCP connection establishment (3-way handshake CPU, both ends).
    pub tcp_conn_setup_cycles: u64,

    // -- vhost-net ------------------------------------------------------------
    /// vhost-net per-kick handling (wakeup, vring scan).
    pub vhost_kick_cycles: u64,

    // -- RDMA / RoCE ----------------------------------------------------------
    /// Posting a work request (ibv_post_send / ibv_post_recv).
    pub rdma_post_cycles: u64,
    /// Handling one completion queue entry.
    pub rdma_cqe_cycles: u64,
    /// One-time memory-region registration.
    pub rdma_reg_mr_cycles: u64,

    // -- vRead ring & daemon ----------------------------------------------------
    /// Per-slot cost on the shared ring (spinlock + descriptor handling).
    pub ring_slot_cycles: u64,
    /// Raising an eventfd (either direction).
    pub eventfd_cycles: u64,
    /// Translating a daemon→guest eventfd into a virtual interrupt.
    pub eventfd_irq_cycles: u64,
    /// Size of one ring slot in bytes (paper default: 4 KB).
    pub ring_slot_bytes: u64,
    /// Number of ring slots (paper default: 1024).
    pub ring_slots: u64,
    /// Loop-device + image-offset translation per request.
    pub loop_request_cycles: u64,
    /// Hypervisor-side filesystem lookup (dentry/inode walk) per open.
    pub fs_lookup_cycles: u64,
    /// Refreshing the mount-point dentry/inode info for one new block.
    pub mount_refresh_cycles: u64,
    /// vRead daemon hash-table lookup (block → image mapping).
    pub daemon_lookup_cycles: u64,

    // -- content-addressed host store ---------------------------------------------
    /// Content-hash cost per byte admitted into a content-addressed host
    /// store (SIMD hash of freshly read data; charged on the daemon
    /// thread when a miss brings chunks in). Only paid in `cas` mode.
    pub cas_hash_cyc_per_byte: f64,
    /// Cost per ring slot of *mapping* resident dedup pages into the
    /// shared ring region instead of copying them (page-table update +
    /// reference bookkeeping). The map-serve fast path pays this in
    /// place of the daemon's payload copy.
    pub cas_map_cycles: u64,

    // -- HDFS application-side costs (Java stack) --------------------------------
    /// Datanode per byte streamed (checksum, packetization, DataXceiver).
    pub datanode_cyc_per_byte: f64,
    /// Datanode per HDFS packet (64 KB) overhead.
    pub datanode_packet_cycles: u64,
    /// Client DFSInputStream per byte on the vanilla path (checksum
    /// verify, packet handling, buffer copy-out).
    pub client_cyc_per_byte: f64,
    /// Client per byte on the vRead path (`vRead_read` skips the HDFS
    /// packet/checksum machinery; what remains is JNI + buffer
    /// management).
    pub vread_client_cyc_per_byte: f64,
    /// Guest kernel block-layer + page-cache work per byte read from the
    /// virtual disk (charged under the `disk read` bucket).
    pub blk_cyc_per_byte: f64,
    /// Client per-request bookkeeping.
    pub client_request_cycles: u64,
    /// Client-side cost of setting up a new block stream (read2 /
    /// positional reads: new BlockReader, checksum state, RPC framing).
    pub client_stream_setup_cycles: u64,
    /// Datanode-side cost of a new read stream (DataXceiver setup).
    pub dn_stream_setup_cycles: u64,
    /// Namenode RPC handling per request.
    pub namenode_rpc_cycles: u64,
    /// HDFS block size (64 MB in Hadoop 1.2.1).
    pub hdfs_block_bytes: u64,
    /// HDFS streaming packet size.
    pub hdfs_packet_bytes: u64,

    // -- devices -------------------------------------------------------------
    /// SSD access latency (ns) and effective bandwidth (bytes/s) for the
    /// image-file workload (random-ish access through the filesystem).
    pub ssd_latency_ns: u64,
    /// Effective SSD read bandwidth, bytes/second.
    pub ssd_bw_bps: f64,
    /// Effective SSD write bandwidth, bytes/second.
    pub ssd_write_bw_bps: f64,
    /// Physical NIC bandwidth, bytes/second (10 GbE).
    pub nic_bw_bps: f64,
    /// One-way LAN latency, ns.
    pub lan_latency_ns: u64,
    /// SR-IOV / VT-d device assignment for guest NICs (paper §6): guest
    /// TCP goes straight to the physical NIC on inter-host paths.
    pub sriov_nics: bool,
    /// Client-side block-fetch timeout (simulated milliseconds): a fetch
    /// that makes no progress for this long fails over to another
    /// replica.
    pub client_read_timeout_ms: u64,
    /// Base for the client's exponential retry backoff (simulated
    /// milliseconds): after the n-th consecutive timeout on one request
    /// the next fetch attempt is delayed `base << min(n-1, 5)` ms, so
    /// repeated failures against a struggling path do not hot-loop.
    pub client_retry_backoff_ms: u64,

    // -- memory sizes ---------------------------------------------------------
    /// Guest page-cache capacity (bytes). VMs have 2 GB of RAM; roughly
    /// half is available to the page cache once the JVM heap is resident.
    pub guest_cache_bytes: u64,
    /// Host page-cache capacity (bytes). Hosts have 16 GB.
    pub host_cache_bytes: u64,
    /// Page-cache tracking granularity.
    pub cache_chunk_bytes: u64,

    // -- simulation granularity --------------------------------------------------
    /// Streaming chunk size used by bulk transfers (events per chunk are
    /// amortised over `chunk / tso` segments, keeping per-byte costs exact).
    pub stream_chunk_bytes: u64,
}

impl Default for Costs {
    fn default() -> Self {
        Costs {
            memcpy_cyc_per_byte: 0.5,
            syscall_cycles: 1_200,
            vmexit_cycles: 6_000,
            virtio_kick_cycles: 9_000,
            irq_inject_cycles: 6_000,
            blk_submit_cycles: 3_000,
            blk_host_cycles: 5_000,
            blk_complete_cycles: 2_500,
            tcp_tx_segment_cycles: 4_500,
            tcp_rx_segment_cycles: 5_500,
            host_tcp_segment_cycles: 3_500,
            tcp_cyc_per_byte: 0.55,
            tso_bytes: 64 * 1024,
            tcp_conn_setup_cycles: 25_000,
            vhost_kick_cycles: 3_500,
            rdma_post_cycles: 1_200,
            rdma_cqe_cycles: 600,
            rdma_reg_mr_cycles: 60_000,
            ring_slot_cycles: 260,
            eventfd_cycles: 1_500,
            eventfd_irq_cycles: 6_000,
            ring_slot_bytes: 4 * 1024,
            ring_slots: 1024,
            loop_request_cycles: 2_500,
            fs_lookup_cycles: 2_000,
            mount_refresh_cycles: 18_000,
            daemon_lookup_cycles: 400,
            cas_hash_cyc_per_byte: 0.45,
            cas_map_cycles: 500,
            datanode_cyc_per_byte: 5.8,
            datanode_packet_cycles: 26_000,
            client_cyc_per_byte: 2.0,
            vread_client_cyc_per_byte: 1.1,
            blk_cyc_per_byte: 0.25,
            client_request_cycles: 9_000,
            client_stream_setup_cycles: 1_200_000,
            dn_stream_setup_cycles: 1_500_000,
            namenode_rpc_cycles: 15_000,
            hdfs_block_bytes: 64 * 1024 * 1024,
            hdfs_packet_bytes: 64 * 1024,
            ssd_latency_ns: 80_000,
            ssd_bw_bps: 300e6,
            ssd_write_bw_bps: 190e6,
            nic_bw_bps: 10e9 / 8.0,
            lan_latency_ns: 30_000,
            sriov_nics: false,
            client_read_timeout_ms: 2_000,
            client_retry_backoff_ms: 50,
            guest_cache_bytes: 1 << 30,       // 1 GiB
            host_cache_bytes: 12 * (1 << 30), // 12 GiB
            cache_chunk_bytes: 64 * 1024,
            stream_chunk_bytes: 256 * 1024,
        }
    }
}

impl Costs {
    /// Cycles to copy `bytes` once.
    pub fn copy_cycles(&self, bytes: u64) -> u64 {
        (bytes as f64 * self.memcpy_cyc_per_byte).round() as u64
    }

    /// Number of TSO segments needed for `bytes`.
    pub fn segments(&self, bytes: u64) -> u64 {
        bytes.div_ceil(self.tso_bytes).max(1)
    }

    /// Guest TCP transmit cycles for `bytes` (segments + per-byte).
    pub fn tcp_tx_cycles(&self, bytes: u64) -> u64 {
        self.segments(bytes) * self.tcp_tx_segment_cycles
            + (bytes as f64 * self.tcp_cyc_per_byte).round() as u64
    }

    /// Guest TCP receive cycles for `bytes`.
    pub fn tcp_rx_cycles(&self, bytes: u64) -> u64 {
        self.segments(bytes) * self.tcp_rx_segment_cycles
            + (bytes as f64 * self.tcp_cyc_per_byte).round() as u64
    }

    /// Host kernel TCP cycles for `bytes` (one side).
    pub fn host_tcp_cycles(&self, bytes: u64) -> u64 {
        self.segments(bytes) * self.host_tcp_segment_cycles
            + (bytes as f64 * 0.5 * self.tcp_cyc_per_byte).round() as u64
    }

    /// Ring-slot bookkeeping cycles to move `bytes` through the vRead ring.
    pub fn ring_cycles(&self, bytes: u64) -> u64 {
        bytes.div_ceil(self.ring_slot_bytes).max(1) * self.ring_slot_cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn copy_scales_linearly() {
        let c = Costs::default();
        assert_eq!(c.copy_cycles(0), 0);
        assert_eq!(c.copy_cycles(1000), 500);
        assert_eq!(c.copy_cycles(2000), 2 * c.copy_cycles(1000));
    }

    #[test]
    fn segments_round_up() {
        let c = Costs::default();
        assert_eq!(c.segments(1), 1);
        assert_eq!(c.segments(64 * 1024), 1);
        assert_eq!(c.segments(64 * 1024 + 1), 2);
        assert_eq!(c.segments(0), 1); // control packets still cost a segment
    }

    #[test]
    fn tcp_costs_monotone_in_size() {
        let c = Costs::default();
        assert!(c.tcp_tx_cycles(128 * 1024) > c.tcp_tx_cycles(64 * 1024));
        assert!(c.tcp_rx_cycles(1024) >= c.tcp_rx_segment_cycles);
    }

    #[test]
    fn ring_cycles_per_slot() {
        let c = Costs::default();
        // 1 MB through 4 KB slots = 256 slots
        assert_eq!(c.ring_cycles(1 << 20), 256 * c.ring_slot_cycles);
        assert_eq!(c.ring_cycles(1), c.ring_slot_cycles);
    }
}

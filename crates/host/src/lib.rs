//! # vread-host — the virtualization substrate
//!
//! Models the hardware/hypervisor layer the paper's evaluation runs on:
//!
//! * [`cluster::Cluster`] — simulated physical hosts (quad-core Xeons with
//!   an SSD and a 10 GbE/RoCE NIC) and the VMs placed on them, each VM
//!   with one vCPU thread, one vhost-net I/O thread, a guest page cache
//!   and a guest filesystem on a virtual-disk image;
//! * [`costs::Costs`] — the single source of truth for every per-operation
//!   CPU cost (memcpy cycles/byte, VM exits, virtio kicks, interrupt
//!   injection, TCP segment processing, RDMA verbs, …);
//! * [`store::BlockStore`] — the typed block-store API (lookup/admit with
//!   [`store::Admission`] outcomes, [`store::CacheStats`] counters);
//! * [`cache::PageCache`] — byte-capacity LRU page caches (guest and host),
//!   which is what makes *read* and *re-read* behave differently;
//! * [`cas::CasStore`] — the content-addressed shared host store: ranges
//!   bound to a [`store::ContentId`] (HDFS replicas, shared files) occupy
//!   physical capacity once and dedup hits are served by mapping;
//! * [`fs::GuestFs`] — a small extent-based filesystem inside each VM's
//!   disk image, plus [`fs::FsSnapshot`], the hypervisor-side mounted view
//!   whose staleness/refresh implements the paper's `vRead_update`
//!   consistency protocol;
//! * [`virtio`] — stage builders for the virtio-blk read/write paths
//!   (guest I/O through the hypervisor), including all data copies the
//!   paper enumerates.
//!
//! Everything is expressed in CPU cycles and device service times, so the
//! paper's `cpufreq-set` experiments fall out of changing a host's clock.

#![forbid(unsafe_code)]

pub mod cache;
pub mod cas;
pub mod cluster;
pub mod costs;
pub mod fault;
pub mod fs;
pub mod store;
pub mod virtio;

pub use cache::PageCache;
pub use cas::CasStore;
pub use cluster::{with_cluster, Cluster, HostCacheMode, HostIx, Vm, VmId};
pub use costs::Costs;
pub use fault::DropHostCache;
pub use fs::{FileId, FsError, FsSnapshot, GuestFs, ObjectId};
pub use store::{Admission, BlockStore, CacheStats, ContentId, Lookup};

//! Host-layer fault actions: page-cache loss.
//!
//! Dropping a host's page cache (the effect of memory pressure, a
//! `drop_caches` sweep, or a host reboot) forces every subsequent read
//! that would have hit warm cache back onto the disk path — the paper's
//! cold-read regime. The guest caches of the host's VMs are dropped too,
//! matching what a host reboot implies.

use crate::cluster::{with_cluster, HostIx};
use vread_sim::fault::FaultAction;
use vread_sim::prelude::*;

/// Empties the page cache of `host` and the guest caches of its VMs.
pub struct DropHostCache {
    /// Host whose caches to drop.
    pub host: HostIx,
}

impl FaultAction for DropHostCache {
    fn label(&self) -> &'static str {
        "fault_cache_drop"
    }

    fn apply(self: Box<Self>, ctx: &mut Ctx<'_>) -> Option<(SimDuration, Box<dyn FaultAction>)> {
        let host = self.host;
        with_cluster(ctx.world, |cl, _| {
            cl.clear_host_cache(host);
            let vms: Vec<_> = cl.hosts[host.0].vms.clone();
            for vm in vms {
                cl.clear_guest_cache(vm);
            }
        });
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::Cluster;
    use crate::costs::Costs;
    use crate::store::BlockStore;
    use vread_sim::fault::schedule_faults;
    use vread_sim::time::SimTime;

    #[test]
    fn drops_host_and_guest_caches() {
        let mut w = World::new(11);
        let mut cl = Cluster::new(Costs::default());
        let h = cl.add_host(&mut w, "h", 4, 2.0);
        let vm = cl.add_vm(&mut w, h, "vm");
        let obj = cl.vm(vm).fs.image();
        cl.vm_mut(vm).cache.admit(obj, 0, 1 << 20);
        cl.hosts[h.0].cache.admit(obj, 0, 1 << 20);
        w.ext.insert(cl);
        schedule_faults(
            &mut w,
            vec![(
                SimTime::ZERO + SimDuration::from_millis(1),
                Box::new(DropHostCache { host: h }) as Box<dyn FaultAction>,
            )],
        );
        w.run();
        let cl = w.ext.get::<Cluster>().unwrap();
        assert_eq!(cl.hosts[h.0].cache.used_bytes(), 0);
        assert_eq!(cl.vm(vm).cache.used_bytes(), 0);
    }
}

//! A small extent-based guest filesystem and its hypervisor-mounted view.
//!
//! Each VM's virtual disk is one *object* ([`ObjectId`]) — an image file
//! on the host's SSD. The guest filesystem maps paths to inodes, and
//! inodes to extents inside the image. HDFS stores its blocks as regular
//! files here, exactly as on a real datanode.
//!
//! The hypervisor-side vRead daemon mounts the image read-only
//! (`losetup`/`kpartx` in the paper) and therefore sees a **snapshot** of
//! the namespace: files created after the mount are invisible until the
//! mount point's dentry/inode information is refreshed. [`FsSnapshot`]
//! models exactly that, and `vread-core` refreshes it on the namenode's
//! new-block notification — the paper's `vRead_update` protocol. Because
//! HDFS is write-once/read-many, data extents never change after a block
//! is finalized, so snapshot reads need no other synchronization (§3.2).

use std::collections::BTreeMap;
use std::fmt;

/// A host-level storage object (a VM disk-image file).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ObjectId(u64);

impl ObjectId {
    /// Constructs from a raw id (minted by [`crate::Cluster`]).
    pub const fn from_raw(raw: u64) -> Self {
        ObjectId(raw)
    }

    /// The raw id.
    pub const fn raw(self) -> u64 {
        self.0
    }
}

/// An inode number within one guest filesystem.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FileId(u32);

impl FileId {
    /// Constructs from a raw inode number.
    pub const fn from_raw(raw: u32) -> Self {
        FileId(raw)
    }

    /// The raw inode number.
    pub const fn raw(self) -> u32 {
        self.0
    }
}

/// A contiguous run of bytes inside the disk image.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Extent {
    /// Offset within the image object.
    pub image_offset: u64,
    /// Length in bytes.
    pub len: u64,
}

/// Filesystem errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FsError {
    /// Path already exists (create) .
    Exists(String),
    /// Path not found.
    NotFound(String),
    /// Read past end of file: `(requested end, file size)`.
    BeyondEof(u64, u64),
}

impl fmt::Display for FsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FsError::Exists(p) => write!(f, "path exists: {p}"),
            FsError::NotFound(p) => write!(f, "path not found: {p}"),
            FsError::BeyondEof(end, size) => {
                write!(f, "read to {end} beyond end of file (size {size})")
            }
        }
    }
}

impl std::error::Error for FsError {}

#[derive(Debug, Clone)]
struct Inode {
    size: u64,
    extents: Vec<Extent>,
}

/// The guest filesystem of one VM.
///
/// ```rust
/// use vread_host::fs::{GuestFs, ObjectId};
///
/// let mut fs = GuestFs::new(ObjectId::from_raw(7));
/// let blk = fs.create("/hdfs/data/blk_1")?;
/// fs.append(blk, 4096);
/// let extents = fs.resolve(blk, 0, 4096)?;
/// assert_eq!(extents[0].len, 4096);
/// # Ok::<(), vread_host::fs::FsError>(())
/// ```
#[derive(Debug, Clone)]
pub struct GuestFs {
    image: ObjectId,
    files: BTreeMap<String, FileId>,
    inodes: Vec<Inode>,
    next_offset: u64,
    /// Bumped on every namespace change (create/delete/rename); lets a
    /// mounted snapshot detect staleness cheaply.
    pub namespace_version: u64,
}

impl GuestFs {
    /// Creates an empty filesystem on image `image`.
    pub fn new(image: ObjectId) -> Self {
        GuestFs {
            image,
            files: BTreeMap::new(),
            inodes: Vec::new(),
            next_offset: 0,
            namespace_version: 0,
        }
    }

    /// The disk image this filesystem lives on.
    pub fn image(&self) -> ObjectId {
        self.image
    }

    /// Creates an empty file.
    ///
    /// # Errors
    ///
    /// Returns [`FsError::Exists`] if the path is taken.
    pub fn create(&mut self, path: &str) -> Result<FileId, FsError> {
        if self.files.contains_key(path) {
            return Err(FsError::Exists(path.to_owned()));
        }
        let id = FileId(self.inodes.len().try_into().expect("inode table fits u32"));
        self.inodes.push(Inode {
            size: 0,
            extents: Vec::new(),
        });
        self.files.insert(path.to_owned(), id);
        self.namespace_version += 1;
        Ok(id)
    }

    /// Appends `len` bytes to `file`, allocating a fresh extent, and
    /// returns it.
    ///
    /// # Panics
    ///
    /// Panics if `file` is not a valid inode of this filesystem.
    pub fn append(&mut self, file: FileId, len: u64) -> Extent {
        let ext = Extent {
            image_offset: self.next_offset,
            len,
        };
        self.next_offset += len;
        let inode = &mut self.inodes[file.0 as usize];
        inode.size += len;
        // Coalesce with the previous extent when contiguous (common case:
        // sequential block writes).
        if let Some(last) = inode.extents.last_mut() {
            if last.image_offset + last.len == ext.image_offset {
                last.len += ext.len;
                return Extent {
                    image_offset: ext.image_offset,
                    len,
                };
            }
        }
        inode.extents.push(ext);
        ext
    }

    /// Looks a path up in the live namespace.
    pub fn lookup(&self, path: &str) -> Option<FileId> {
        self.files.get(path).copied()
    }

    /// Current size of a file.
    pub fn size(&self, file: FileId) -> u64 {
        self.inodes[file.0 as usize].size
    }

    /// Resolves `[offset, offset+len)` of `file` to image extents.
    ///
    /// # Errors
    ///
    /// Returns [`FsError::BeyondEof`] if the range extends past the file.
    pub fn resolve(&self, file: FileId, offset: u64, len: u64) -> Result<Vec<Extent>, FsError> {
        let inode = &self.inodes[file.0 as usize];
        if offset + len > inode.size {
            return Err(FsError::BeyondEof(offset + len, inode.size));
        }
        let mut out = Vec::new();
        let mut pos = 0u64; // logical position of current extent start
        let mut need_off = offset;
        let mut need_len = len;
        for ext in &inode.extents {
            if need_len == 0 {
                break;
            }
            let ext_end = pos + ext.len;
            if need_off < ext_end {
                let inner = need_off - pos;
                let take = (ext.len - inner).min(need_len);
                out.push(Extent {
                    image_offset: ext.image_offset + inner,
                    len: take,
                });
                need_off += take;
                need_len -= take;
            }
            pos = ext_end;
        }
        debug_assert_eq!(need_len, 0, "extent bookkeeping out of sync with size");
        Ok(out)
    }

    /// Deletes a path (the inode's storage is not reclaimed — HDFS blocks
    /// are large and deletion is rare in the modelled workloads).
    ///
    /// # Errors
    ///
    /// Returns [`FsError::NotFound`] if absent.
    pub fn delete(&mut self, path: &str) -> Result<(), FsError> {
        self.files
            .remove(path)
            .map(|_| {
                self.namespace_version += 1;
            })
            .ok_or_else(|| FsError::NotFound(path.to_owned()))
    }

    /// Renames a path.
    ///
    /// # Errors
    ///
    /// Returns [`FsError::NotFound`] if `from` is absent or
    /// [`FsError::Exists`] if `to` is taken.
    pub fn rename(&mut self, from: &str, to: &str) -> Result<(), FsError> {
        if self.files.contains_key(to) {
            return Err(FsError::Exists(to.to_owned()));
        }
        let id = self
            .files
            .remove(from)
            .ok_or_else(|| FsError::NotFound(from.to_owned()))?;
        self.files.insert(to.to_owned(), id);
        self.namespace_version += 1;
        Ok(())
    }

    /// Number of live paths.
    pub fn file_count(&self) -> usize {
        self.files.len()
    }

    /// Takes a mount-time snapshot of the namespace (what `losetup` +
    /// `mount -o ro` exposes to the hypervisor).
    pub fn snapshot(&self) -> FsSnapshot {
        FsSnapshot {
            version: self.namespace_version,
            files: self
                .files
                .iter()
                .map(|(p, id)| (p.clone(), (*id, self.inodes[id.0 as usize].size)))
                .collect(),
        }
    }
}

/// The hypervisor's read-only mounted view of a [`GuestFs`].
///
/// Lookups go through the dentry/inode information captured at the last
/// refresh; blocks written by the datanode after that are invisible until
/// [`FsSnapshot::refresh`] runs (triggered by `vRead_update`).
#[derive(Debug, Clone, Default)]
pub struct FsSnapshot {
    version: u64,
    files: BTreeMap<String, (FileId, u64)>,
}

impl FsSnapshot {
    /// Looks up `(inode, size-at-refresh)` in the mounted view.
    pub fn lookup(&self, path: &str) -> Option<(FileId, u64)> {
        self.files.get(path).copied()
    }

    /// Whether the live filesystem changed since this snapshot.
    pub fn is_stale(&self, fs: &GuestFs) -> bool {
        self.version != fs.namespace_version
    }

    /// Re-reads the namespace (the `vRead_update` mount refresh).
    pub fn refresh(&mut self, fs: &GuestFs) {
        *self = fs.snapshot();
    }

    /// Number of paths visible through the mount.
    pub fn file_count(&self) -> usize {
        self.files.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fs() -> GuestFs {
        GuestFs::new(ObjectId::from_raw(9))
    }

    #[test]
    fn create_append_resolve() {
        let mut f = fs();
        let id = f.create("/hdfs/blk_1").unwrap();
        f.append(id, 1000);
        f.append(id, 500);
        assert_eq!(f.size(id), 1500);
        let exts = f.resolve(id, 0, 1500).unwrap();
        // contiguous appends coalesce into one extent
        assert_eq!(exts.len(), 1);
        assert_eq!(exts[0].len, 1500);
    }

    #[test]
    fn resolve_subrange_with_interleaved_files() {
        let mut f = fs();
        let a = f.create("/a").unwrap();
        let b = f.create("/b").unwrap();
        f.append(a, 1000); // a: [0,1000)
        f.append(b, 1000); // b: [1000,2000)
        f.append(a, 1000); // a: [2000,3000)
        let exts = f.resolve(a, 500, 1000).unwrap();
        assert_eq!(exts.len(), 2);
        assert_eq!(
            exts[0],
            Extent {
                image_offset: 500,
                len: 500
            }
        );
        assert_eq!(
            exts[1],
            Extent {
                image_offset: 2000,
                len: 500
            }
        );
    }

    #[test]
    fn resolve_beyond_eof_errors() {
        let mut f = fs();
        let a = f.create("/a").unwrap();
        f.append(a, 100);
        assert!(matches!(
            f.resolve(a, 50, 100),
            Err(FsError::BeyondEof(150, 100))
        ));
    }

    #[test]
    fn duplicate_create_fails() {
        let mut f = fs();
        f.create("/a").unwrap();
        assert!(matches!(f.create("/a"), Err(FsError::Exists(_))));
    }

    #[test]
    fn delete_and_rename_bump_version() {
        let mut f = fs();
        f.create("/a").unwrap();
        let v0 = f.namespace_version;
        f.rename("/a", "/b").unwrap();
        assert!(f.lookup("/a").is_none());
        assert!(f.lookup("/b").is_some());
        f.delete("/b").unwrap();
        assert!(f.namespace_version >= v0 + 2);
        assert!(matches!(f.delete("/b"), Err(FsError::NotFound(_))));
        assert!(matches!(f.rename("/x", "/y"), Err(FsError::NotFound(_))));
    }

    #[test]
    fn snapshot_hides_new_files_until_refresh() {
        let mut f = fs();
        let a = f.create("/blk_1").unwrap();
        f.append(a, 4096);
        let mut snap = f.snapshot();
        assert_eq!(snap.lookup("/blk_1"), Some((a, 4096)));
        assert!(!snap.is_stale(&f));

        // datanode writes a new block: invisible through the stale mount
        let b = f.create("/blk_2").unwrap();
        f.append(b, 8192);
        assert!(snap.is_stale(&f));
        assert_eq!(snap.lookup("/blk_2"), None);

        snap.refresh(&f);
        assert_eq!(snap.lookup("/blk_2"), Some((b, 8192)));
        assert!(!snap.is_stale(&f));
    }

    #[test]
    fn snapshot_size_is_frozen_but_appends_dont_stale_namespace() {
        let mut f = fs();
        let a = f.create("/blk").unwrap();
        f.append(a, 100);
        let snap = f.snapshot();
        // append-only growth does not change the namespace version …
        f.append(a, 100);
        assert!(!snap.is_stale(&f));
        // … but the mounted view still reports the old size (the paper
        // only calls vRead_update once a block is complete).
        assert_eq!(snap.lookup("/blk").unwrap().1, 100);
        assert_eq!(f.size(a), 200);
    }
}

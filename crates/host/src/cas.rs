//! Content-addressed shared host block store.
//!
//! The host page cache of [`crate::cache::PageCache`] stores each VM's
//! disk blocks byte-for-byte, so N co-located HDFS replicas of the same
//! block occupy the cache N times. [`CasStore`] keys chunks by *content*
//! instead: ranges of an image declared identical via
//! [`BlockStore::bind`] (block files registered by `vread_hdfs`'s
//! populate layer) resolve to chunks of a shared content space, so
//! identical blocks are resident once no matter how many images expose
//! them. Unbound ranges fall back to per-object keys and behave exactly
//! like the LRU store.
//!
//! Chunking happens in **content space** (from offset 0 of each bound
//! byte sequence), so replicas laid out at different — even differently
//! aligned — image offsets still share chunks. Eviction is one global
//! LRU over physical chunks; every map the store keeps is a `BTreeMap`,
//! so iteration order, eviction order and statistics are deterministic.

use std::collections::BTreeMap;

use crate::fs::ObjectId;
use crate::store::{Admission, BlockStore, CacheStats, ContentId, Lookup};

/// Key of one physical chunk: content space for bound ranges, object
/// space for everything else.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum ChunkKey {
    /// Chunk `idx` of content `cid` (shared across objects).
    Content { cid: u64, idx: u64 },
    /// Chunk `idx` of unbound object `obj` (private, LRU-equivalent).
    Object { obj: u64, idx: u64 },
}

/// One binding: `[image_offset, image_offset+len)` of an object holds
/// `[content_offset, content_offset+len)` of a content sequence.
#[derive(Debug, Clone, Copy)]
struct BindExtent {
    len: u64,
    content: u64,
    content_offset: u64,
}

/// A resident physical chunk: recency tick plus the object that first
/// admitted it (distinguishes own hits from dedup hits).
#[derive(Debug, Clone, Copy)]
struct Resident {
    tick: u64,
    owner: u64,
}

/// The content-addressed store. See the module docs.
#[derive(Debug, Clone)]
pub struct CasStore {
    capacity: u64,
    chunk: u64,
    used: u64,
    tick: u64,
    /// `(object, image_offset)` -> binding; range-queried to segment
    /// object ranges into content/object pieces.
    bindings: BTreeMap<(u64, u64), BindExtent>,
    /// chunk -> residency record.
    resident: BTreeMap<ChunkKey, Resident>,
    /// last-use tick -> chunk (ticks are unique): the global LRU order.
    order: BTreeMap<u64, ChunkKey>,
    stats: CacheStats,
}

impl CasStore {
    /// Creates a store of `capacity` bytes tracking `chunk`-byte chunks.
    ///
    /// # Panics
    ///
    /// Panics if `chunk` is zero or larger than `capacity`.
    pub fn new(capacity: u64, chunk: u64) -> Self {
        assert!(chunk > 0, "chunk size must be positive");
        assert!(capacity >= chunk, "capacity smaller than one chunk");
        CasStore {
            capacity,
            chunk,
            used: 0,
            tick: 0,
            bindings: BTreeMap::new(),
            resident: BTreeMap::new(),
            order: BTreeMap::new(),
            stats: CacheStats::default(),
        }
    }

    /// The physical chunk keys backing `[offset, offset+len)` of `obj`,
    /// in key order and without duplicates (a sub-chunk binding can
    /// split one object chunk into pieces that share a key).
    fn keys_for(&self, obj: u64, offset: u64, len: u64) -> Vec<ChunkKey> {
        let mut keys: Vec<ChunkKey> = Vec::new();
        if len == 0 {
            return keys;
        }
        let end = offset + len;
        let mut pos = offset;
        while pos < end {
            // The binding at or before `pos`, if it still covers it.
            let covering = self
                .bindings
                .range((obj, 0)..=(obj, pos))
                .next_back()
                .filter(|(&(_, start), be)| start + be.len > pos);
            match covering {
                Some((&(_, start), be)) => {
                    let piece_end = end.min(start + be.len);
                    let c0 = be.content_offset + (pos - start);
                    let c1 = be.content_offset + (piece_end - start);
                    for idx in c0 / self.chunk..=(c1 - 1) / self.chunk {
                        keys.push(ChunkKey::Content {
                            cid: be.content,
                            idx,
                        });
                    }
                    pos = piece_end;
                }
                None => {
                    // Unbound until the next binding starts (or `end`).
                    let next_start = self
                        .bindings
                        .range((obj, pos)..(obj, u64::MAX))
                        .next()
                        .map(|(&(_, start), _)| start)
                        .unwrap_or(u64::MAX);
                    let piece_end = end.min(next_start.max(pos + 1));
                    for idx in pos / self.chunk..=(piece_end - 1) / self.chunk {
                        keys.push(ChunkKey::Object { obj, idx });
                    }
                    pos = piece_end;
                }
            }
        }
        keys.sort_unstable();
        keys.dedup();
        keys
    }

    fn touch(&mut self, key: ChunkKey) {
        let r = self.resident.get_mut(&key).expect("touch of absent chunk");
        let old = r.tick;
        self.tick += 1;
        r.tick = self.tick;
        self.order.remove(&old);
        self.order.insert(self.tick, key);
    }

    fn insert_chunk(&mut self, key: ChunkKey, owner: u64) {
        while self.used + self.chunk > self.capacity {
            let (&tick, &victim) = self.order.iter().next().expect("store over-full but empty");
            self.order.remove(&tick);
            self.resident.remove(&victim);
            self.used -= self.chunk;
        }
        self.tick += 1;
        self.resident.insert(
            key,
            Resident {
                tick: self.tick,
                owner,
            },
        );
        self.order.insert(self.tick, key);
        self.used += self.chunk;
    }
}

impl BlockStore for CasStore {
    fn lookup(&mut self, obj: ObjectId, offset: u64, len: u64) -> Lookup {
        let mut out = Lookup::default();
        for key in self.keys_for(obj.raw(), offset, len) {
            match self.resident.get(&key) {
                Some(r) => {
                    let dedup = matches!(key, ChunkKey::Content { .. }) && r.owner != obj.raw();
                    self.touch(key);
                    self.stats.hits += 1;
                    if dedup {
                        self.stats.dedup_hits += 1;
                        out.dedup_bytes += self.chunk;
                    } else {
                        out.hit_bytes += self.chunk;
                    }
                }
                None => {
                    self.stats.misses += 1;
                    out.miss_bytes += self.chunk;
                }
            }
        }
        out
    }

    fn probe(&self, obj: ObjectId, offset: u64, len: u64) -> bool {
        self.keys_for(obj.raw(), offset, len)
            .iter()
            .all(|k| self.resident.contains_key(k))
    }

    fn admit(&mut self, obj: ObjectId, offset: u64, len: u64) -> Admission {
        let mut any_miss = false;
        let mut any_dedup = false;
        for key in self.keys_for(obj.raw(), offset, len) {
            match self.resident.get(&key) {
                Some(r) => {
                    any_dedup |= matches!(key, ChunkKey::Content { .. }) && r.owner != obj.raw();
                    self.touch(key);
                }
                None => {
                    any_miss = true;
                    self.insert_chunk(key, obj.raw());
                }
            }
        }
        if any_miss {
            Admission::Miss
        } else if any_dedup {
            Admission::HitDedup
        } else {
            Admission::Hit
        }
    }

    fn evict_to_fit(&mut self, bytes: u64) {
        let budget = self.capacity.saturating_sub(bytes);
        while self.used > budget {
            let Some((&tick, &victim)) = self.order.iter().next() else {
                return;
            };
            self.order.remove(&tick);
            self.resident.remove(&victim);
            self.used -= self.chunk;
        }
    }

    fn bind(
        &mut self,
        obj: ObjectId,
        image_offset: u64,
        len: u64,
        content: ContentId,
        content_offset: u64,
    ) {
        if len == 0 {
            return;
        }
        self.bindings.insert(
            (obj.raw(), image_offset),
            BindExtent {
                len,
                content: content.raw(),
                content_offset,
            },
        );
    }

    /// Drops `obj`'s private chunks and the shared content chunks it
    /// admitted (co-sharers of evicted content refault deterministically).
    fn evict_object(&mut self, obj: ObjectId) {
        let victims: Vec<(u64, ChunkKey)> = self
            .order
            .iter()
            .filter(|(_, k)| match k {
                ChunkKey::Object { obj: o, .. } => *o == obj.raw(),
                ChunkKey::Content { .. } => self.resident[k].owner == obj.raw(),
            })
            .map(|(&tick, &k)| (tick, k))
            .collect();
        for (tick, k) in victims {
            self.order.remove(&tick);
            self.resident
                .remove(&k)
                .expect("order/resident out of sync");
            self.used -= self.chunk;
        }
    }

    fn clear(&mut self) {
        self.resident.clear();
        self.order.clear();
        self.used = 0;
    }

    fn used_bytes(&self) -> u64 {
        self.used
    }

    fn logical_bytes(&self) -> u64 {
        // Private chunks serve exactly one object...
        let mut logical = self
            .resident
            .keys()
            .filter(|k| matches!(k, ChunkKey::Object { .. }))
            .count() as u64
            * self.chunk;
        // ...while a content chunk serves every binding that covers it.
        for be in self.bindings.values() {
            let c0 = be.content_offset / self.chunk;
            let c1 = (be.content_offset + be.len - 1) / self.chunk;
            for idx in c0..=c1 {
                if self.resident.contains_key(&ChunkKey::Content {
                    cid: be.content,
                    idx,
                }) {
                    logical += self.chunk;
                }
            }
        }
        logical
    }

    fn capacity_bytes(&self) -> u64 {
        self.capacity
    }

    fn stats(&self) -> CacheStats {
        self.stats
    }

    fn content_addressed(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj(n: u64) -> ObjectId {
        ObjectId::from_raw(n)
    }

    fn cid(n: u64) -> ContentId {
        ContentId::from_raw(n)
    }

    #[test]
    fn unbound_ranges_behave_like_lru() {
        let mut s = CasStore::new(1 << 20, 4096);
        assert_eq!(s.lookup(obj(1), 0, 8192).miss_bytes, 8192);
        s.admit(obj(1), 0, 8192);
        let l = s.lookup(obj(1), 0, 8192);
        assert_eq!((l.hit_bytes, l.dedup_bytes, l.miss_bytes), (8192, 0, 0));
        assert!(s.probe(obj(1), 0, 8192));
        assert_eq!(s.used_bytes(), 8192);
        assert_eq!(s.logical_bytes(), 8192);
        // other objects are disjoint
        assert_eq!(s.lookup(obj(2), 0, 4096).miss_bytes, 4096);
    }

    #[test]
    fn replicas_share_physical_chunks() {
        let mut s = CasStore::new(1 << 20, 4096);
        // Two images hold the same 8 KB block at different offsets.
        s.bind(obj(1), 0, 8192, cid(7), 0);
        s.bind(obj(2), 12288, 8192, cid(7), 0);
        assert_eq!(s.admit(obj(1), 0, 8192), Admission::Miss);
        assert_eq!(s.used_bytes(), 8192);
        // The second replica is already resident — and counted as dedup.
        let l = s.lookup(obj(2), 12288, 8192);
        assert_eq!((l.dedup_bytes, l.miss_bytes), (8192, 0));
        assert_eq!(l.admission(), Admission::HitDedup);
        assert_eq!(s.admit(obj(2), 12288, 8192), Admission::HitDedup);
        // Still one physical copy; two logical views.
        assert_eq!(s.used_bytes(), 8192);
        assert_eq!(s.logical_bytes(), 16384);
        assert_eq!(s.stats().dedup_hits, 2);
    }

    #[test]
    fn differently_aligned_replicas_still_dedup() {
        let mut s = CasStore::new(1 << 20, 4096);
        // Same content, image offsets with different chunk phase.
        s.bind(obj(1), 100, 8192, cid(9), 0);
        s.bind(obj(2), 5000, 8192, cid(9), 0);
        s.admit(obj(1), 100, 8192);
        let used = s.used_bytes();
        let l = s.lookup(obj(2), 5000, 8192);
        assert_eq!(l.miss_bytes, 0);
        assert_eq!(l.dedup_bytes, 8192);
        assert_eq!(s.used_bytes(), used, "no new physical chunks");
    }

    #[test]
    fn own_rereads_are_plain_hits_not_dedup() {
        let mut s = CasStore::new(1 << 20, 4096);
        s.bind(obj(1), 0, 8192, cid(3), 0);
        s.admit(obj(1), 0, 8192);
        let l = s.lookup(obj(1), 0, 8192);
        assert_eq!(l.admission(), Admission::Hit);
        assert_eq!(l.dedup_bytes, 0);
        assert_eq!(s.stats().dedup_hits, 0);
    }

    #[test]
    fn lru_eviction_is_global_and_capacity_bounded() {
        let mut s = CasStore::new(3 * 4096, 4096);
        s.admit(obj(1), 0, 4096);
        s.admit(obj(1), 4096, 4096);
        s.admit(obj(1), 8192, 4096);
        // touch chunk 0 so chunk 1 is LRU
        assert_eq!(s.lookup(obj(1), 0, 4096).hit_bytes, 4096);
        s.admit(obj(1), 12288, 4096);
        assert!(s.probe(obj(1), 0, 4096));
        assert!(!s.probe(obj(1), 4096, 4096));
        assert!(s.probe(obj(1), 8192, 4096));
        assert!(s.probe(obj(1), 12288, 4096));
        assert_eq!(s.used_bytes(), 3 * 4096);
    }

    #[test]
    fn evict_object_drops_private_and_owned_content() {
        let mut s = CasStore::new(1 << 20, 4096);
        s.bind(obj(1), 0, 4096, cid(5), 0);
        s.bind(obj(2), 0, 4096, cid(5), 0);
        s.admit(obj(1), 0, 4096); // content chunk, owner = 1
        s.admit(obj(1), 8192, 4096); // private chunk of 1
        s.admit(obj(2), 8192, 4096); // private chunk of 2
        s.evict_object(obj(1));
        assert!(!s.probe(obj(1), 8192, 4096));
        assert!(
            !s.probe(obj(2), 0, 4096),
            "shared content owned by 1 dropped"
        );
        assert!(s.probe(obj(2), 8192, 4096));
        assert_eq!(s.used_bytes(), 4096);
    }

    #[test]
    fn clear_keeps_bindings() {
        let mut s = CasStore::new(1 << 20, 4096);
        s.bind(obj(1), 0, 4096, cid(5), 0);
        s.bind(obj(2), 0, 4096, cid(5), 0);
        s.admit(obj(1), 0, 4096);
        s.clear();
        assert_eq!(s.used_bytes(), 0);
        // Rebinding not needed: dedup still works after drop_caches.
        s.admit(obj(1), 0, 4096);
        assert_eq!(s.lookup(obj(2), 0, 4096).dedup_bytes, 4096);
    }

    #[test]
    fn sub_chunk_binding_boundaries_do_not_double_count() {
        let mut s = CasStore::new(1 << 20, 4096);
        // A binding strictly inside chunk 0 of object 1.
        s.bind(obj(1), 1000, 2000, cid(4), 0);
        let keys = s.keys_for(1, 0, 4096);
        // object chunk 0 (before + after the binding, deduped) + content chunk 0
        assert_eq!(keys.len(), 2);
        s.admit(obj(1), 0, 4096);
        assert_eq!(s.used_bytes(), 2 * 4096);
        assert!(s.probe(obj(1), 0, 4096));
    }

    #[test]
    fn zero_length_range_is_resident() {
        let mut s = CasStore::new(1 << 20, 4096);
        assert_eq!(s.lookup(obj(1), 500, 0), Lookup::default());
        assert!(s.probe(obj(1), 500, 0));
    }
}

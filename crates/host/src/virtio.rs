//! Stage builders for the virtio-blk data path.
//!
//! These produce the [`Stage`] chains for a guest reading/writing a range
//! of its own virtual disk, with every copy and boundary crossing the
//! paper enumerates:
//!
//! * guest: syscall + block request submission + virtio kick (a VM exit);
//! * host: request handling in the VM's I/O thread, a physical disk access
//!   when the host page cache misses, and the **virtio-vqueue copy** of
//!   the payload from host memory into the guest's vring buffers;
//! * guest: completion interrupt and the kernel→user copy into the
//!   application buffer.
//!
//! The guest and host page caches are consulted and populated as a side
//! effect, so *re-reads* naturally skip the device (and, when the guest
//! cache still holds the range, the whole virtio path).

use vread_sim::prelude::*;

use crate::cluster::{Cluster, VmId};
use crate::store::BlockStore;

/// Builds the stage chain for a guest application reading
/// `[offset, offset+len)` of its VM's disk image.
///
/// `user_cat` is the accounting category charged for the final
/// kernel→user copy (e.g. [`CpuCategory::DatanodeApp`] when the HDFS
/// datanode reads a block, [`CpuCategory::ClientApp`] for a local file
/// read by the measurement application).
pub fn guest_disk_read(
    cl: &mut Cluster,
    vm: VmId,
    offset: u64,
    len: u64,
    user_cat: CpuCategory,
) -> Vec<Stage> {
    let costs = cl.costs.clone();
    let obj = cl.vms[vm.0].fs.image();
    let guest_missing = cl.vms[vm.0].cache.lookup(obj, offset, len).miss_bytes;
    let vcpu = cl.vms[vm.0].vcpu;
    let vhost = cl.vms[vm.0].vhost;
    let mut stages = Vec::with_capacity(8);

    if guest_missing == 0 {
        // Served from the guest page cache: read() syscall + copy to user.
        stages.push(Stage::copy(
            vcpu,
            costs.syscall_cycles + costs.copy_cycles(len),
            user_cat,
            len,
        ));
        return stages;
    }

    // Guest submits a block request and kicks the backend; the guest
    // block layer + page-cache insertion costs scale with the size.
    stages.push(Stage::cpu(
        vcpu,
        costs.syscall_cycles
            + costs.blk_submit_cycles
            + costs.virtio_kick_cycles
            + (len as f64 * costs.blk_cyc_per_byte).round() as u64,
        CpuCategory::DiskRead,
    ));
    // Host-side request handling in the VM's I/O thread.
    stages.push(Stage::cpu(vhost, costs.blk_host_cycles, CpuCategory::Other));

    // Physical disk access for whatever the host page cache lacks.
    let host_ix = cl.vms[vm.0].host;
    let host_missing = cl.hosts[host_ix.0]
        .cache
        .lookup(obj, offset, len)
        .miss_bytes;
    if host_missing > 0 {
        stages.push(Stage::disk(cl.hosts[host_ix.0].dev, host_missing));
    }
    cl.hosts[host_ix.0].cache.admit(obj, offset, len);

    // The virtio-vqueue copy: host memory -> guest vring buffers, then the
    // completion interrupt.
    stages.push(Stage::copy(
        vhost,
        costs.copy_cycles(len),
        CpuCategory::CopyVirtioVqueue,
        len,
    ));
    stages.push(Stage::cpu(
        vhost,
        costs.irq_inject_cycles,
        CpuCategory::Other,
    ));
    // Guest completion + kernel->user copy.
    stages.push(Stage::copy(
        vcpu,
        costs.blk_complete_cycles + costs.copy_cycles(len),
        user_cat,
        len,
    ));

    cl.vms[vm.0].cache.admit(obj, offset, len);
    stages
}

/// Builds the stage chain for a guest application writing
/// `[offset, offset+len)` of its VM's disk image (write-through; HDFS
/// block writes are sequential and fsync'd at block completion).
pub fn guest_disk_write(
    cl: &mut Cluster,
    vm: VmId,
    offset: u64,
    len: u64,
    user_cat: CpuCategory,
) -> Vec<Stage> {
    let costs = cl.costs.clone();
    let obj = cl.vms[vm.0].fs.image();
    let vcpu = cl.vms[vm.0].vcpu;
    let vhost = cl.vms[vm.0].vhost;
    let host_ix = cl.vms[vm.0].host;
    let dev = cl.hosts[host_ix.0].dev;

    // Writes land in both caches (the data is hot afterwards).
    cl.vms[vm.0].cache.admit(obj, offset, len);
    cl.hosts[host_ix.0].cache.admit(obj, offset, len);

    // Scale the device request so the single-bandwidth device model
    // reflects the (slower) effective write bandwidth.
    let dev_bytes = (len as f64 * costs.ssd_bw_bps / costs.ssd_write_bw_bps).round() as u64;

    vec![
        // user -> kernel copy + submission + kick
        Stage::copy(
            vcpu,
            costs.syscall_cycles + costs.copy_cycles(len) + costs.blk_submit_cycles,
            user_cat,
            len,
        ),
        Stage::cpu(vcpu, costs.virtio_kick_cycles, CpuCategory::DiskRead),
        // host handling + guest memory -> host write buffer copy
        Stage::cpu(vhost, costs.blk_host_cycles, CpuCategory::Other),
        Stage::copy(
            vhost,
            costs.copy_cycles(len),
            CpuCategory::CopyVirtioVqueue,
            len,
        ),
        Stage::disk(dev, dev_bytes),
        Stage::cpu(vhost, costs.irq_inject_cycles, CpuCategory::Other),
        Stage::cpu(vcpu, costs.blk_complete_cycles, CpuCategory::DiskRead),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::costs::Costs;

    fn setup() -> (World, Cluster, VmId) {
        let mut w = World::new(1);
        let mut cl = Cluster::new(Costs::default());
        let h = cl.add_host(&mut w, "h", 4, 2.0);
        let vm = cl.add_vm(&mut w, h, "vm");
        (w, cl, vm)
    }

    #[test]
    fn cold_read_touches_disk() {
        let (_w, mut cl, vm) = setup();
        let stages = guest_disk_read(&mut cl, vm, 0, 65536, CpuCategory::ClientApp);
        assert!(
            stages.iter().any(|s| matches!(s, Stage::Disk { .. })),
            "cold read must hit the device"
        );
        // 6 stages: submit, host req, disk, vqueue copy, irq, complete
        assert_eq!(stages.len(), 6);
    }

    #[test]
    fn guest_cached_reread_is_one_stage() {
        let (_w, mut cl, vm) = setup();
        let _ = guest_disk_read(&mut cl, vm, 0, 65536, CpuCategory::ClientApp);
        let stages = guest_disk_read(&mut cl, vm, 0, 65536, CpuCategory::ClientApp);
        assert_eq!(stages.len(), 1, "guest-cache hit short-circuits virtio");
        assert!(matches!(
            stages[0],
            Stage::Copy {
                cat: CpuCategory::ClientApp,
                bytes: 65536,
                ..
            }
        ));
    }

    #[test]
    fn host_cached_read_skips_disk_but_not_virtio() {
        let (_w, mut cl, vm) = setup();
        let _ = guest_disk_read(&mut cl, vm, 0, 65536, CpuCategory::ClientApp);
        cl.clear_guest_cache(vm);
        let stages = guest_disk_read(&mut cl, vm, 0, 65536, CpuCategory::ClientApp);
        assert!(
            !stages.iter().any(|s| matches!(s, Stage::Disk { .. })),
            "host cache hit must not touch the device"
        );
        assert!(stages.len() >= 5, "virtio path still exercised");
    }

    #[test]
    fn write_hits_device_and_populates_caches() {
        let (_w, mut cl, vm) = setup();
        let stages = guest_disk_write(&mut cl, vm, 0, 65536, CpuCategory::DatanodeApp);
        assert!(stages.iter().any(|s| matches!(s, Stage::Disk { .. })));
        // written data is a cache hit afterwards
        let rd = guest_disk_read(&mut cl, vm, 0, 65536, CpuCategory::DatanodeApp);
        assert_eq!(rd.len(), 1);
    }

    #[test]
    fn write_device_bytes_scaled_for_write_bandwidth() {
        let (_w, mut cl, vm) = setup();
        let stages = guest_disk_write(&mut cl, vm, 0, 100_000, CpuCategory::Other);
        let Some(Stage::Disk { bytes, .. }) =
            stages.iter().find(|s| matches!(s, Stage::Disk { .. }))
        else {
            panic!("no disk stage");
        };
        let expect = (100_000.0 * cl.costs.ssd_bw_bps / cl.costs.ssd_write_bw_bps).round() as u64;
        assert_eq!(*bytes, expect);
    }

    #[test]
    fn end_to_end_cold_read_takes_device_time() {
        let (mut w, mut cl, vm) = setup();
        struct Sink;
        struct Done;
        impl Actor for Sink {
            fn handle(&mut self, msg: BoxMsg, ctx: &mut Ctx<'_>) {
                if msg.is::<Done>() {
                    let ms = ctx.now().as_secs_f64() * 1e3;
                    ctx.metrics().sample("t_ms", ms);
                }
            }
        }
        let sink = w.add_actor("sink", Sink);
        let stages = guest_disk_read(&mut cl, vm, 0, 1 << 20, CpuCategory::ClientApp);
        w.ext.insert(cl);
        w.start_chain(stages, sink, Done);
        w.run();
        let ms = w.metrics.mean("t_ms");
        // 1 MB at 300 MB/s ≈ 3.3ms + 80us latency + CPU stages
        assert!(ms > 3.0 && ms < 6.0, "cold 1MB read took {ms}ms");
    }
}

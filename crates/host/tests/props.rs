//! Property-based tests of the page cache and guest filesystem against
//! simple reference models.

use std::collections::BTreeSet;

use proptest::prelude::*;
use vread_host::cache::PageCache;
use vread_host::cas::CasStore;
use vread_host::fs::{FsError, GuestFs, ObjectId};
use vread_host::store::BlockStore;

#[derive(Debug, Clone)]
enum CacheOp {
    Insert { obj: u64, off: u64, len: u64 },
    Query { obj: u64, off: u64, len: u64 },
    EvictObj { obj: u64 },
    Clear,
}

fn cache_op() -> impl Strategy<Value = CacheOp> {
    prop_oneof![
        (0u64..3, 0u64..1 << 16, 1u64..1 << 14).prop_map(|(obj, off, len)| CacheOp::Insert {
            obj,
            off,
            len
        }),
        (0u64..3, 0u64..1 << 16, 1u64..1 << 14).prop_map(|(obj, off, len)| CacheOp::Query {
            obj,
            off,
            len
        }),
        (0u64..3).prop_map(|obj| CacheOp::EvictObj { obj }),
        Just(CacheOp::Clear),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The cache never exceeds capacity and, while capacity is not
    /// exceeded, agrees with an exact reference set of chunks.
    #[test]
    fn cache_matches_reference(ops in proptest::collection::vec(cache_op(), 1..60)) {
        const CHUNK: u64 = 4096;
        const CAP: u64 = 64 * CHUNK;
        let mut cache = PageCache::new(CAP, CHUNK);
        let mut reference: BTreeSet<(u64, u64)> = BTreeSet::new();
        let mut overflowed = false;

        let chunks = |off: u64, len: u64| {
            let first = off / CHUNK;
            let last = (off + len - 1) / CHUNK;
            first..=last
        };

        for op in &ops {
            match *op {
                CacheOp::Insert { obj, off, len } => {
                    cache.admit(ObjectId::from_raw(obj), off, len);
                    for c in chunks(off, len) {
                        reference.insert((obj, c));
                    }
                    if reference.len() as u64 * CHUNK > CAP {
                        overflowed = true; // reference has no eviction
                    }
                }
                CacheOp::Query { obj, off, len } => {
                    let covered = cache.probe(ObjectId::from_raw(obj), off, len);
                    if !overflowed {
                        let expect = chunks(off, len).all(|c| reference.contains(&(obj, c)));
                        prop_assert_eq!(covered, expect, "query divergence before overflow");
                    } else if covered {
                        // anything cached must at least exist in the reference
                        for c in chunks(off, len) {
                            prop_assert!(reference.contains(&(obj, c)));
                        }
                    }
                }
                CacheOp::EvictObj { obj } => {
                    cache.evict_object(ObjectId::from_raw(obj));
                    reference.retain(|&(o, _)| o != obj);
                }
                CacheOp::Clear => {
                    cache.clear();
                    reference.clear();
                    overflowed = false;
                }
            }
            prop_assert!(cache.used_bytes() <= CAP, "capacity exceeded");
        }
    }

    /// Without content bindings, the CAS store is observationally
    /// identical to the LRU cache: same lookup outcomes, same coverage,
    /// same residency and statistics, for any op sequence. (Bound-range
    /// behavior is covered by the unit tests and the scenario-level
    /// equivalence test in `vread-bench`.)
    #[test]
    fn unbound_cas_store_matches_lru(ops in proptest::collection::vec(cache_op(), 1..60)) {
        const CHUNK: u64 = 4096;
        const CAP: u64 = 64 * CHUNK;
        let mut lru = PageCache::new(CAP, CHUNK);
        let mut cas = CasStore::new(CAP, CHUNK);
        for op in &ops {
            match *op {
                CacheOp::Insert { obj, off, len } => {
                    let o = ObjectId::from_raw(obj);
                    prop_assert_eq!(lru.admit(o, off, len), cas.admit(o, off, len));
                }
                CacheOp::Query { obj, off, len } => {
                    let o = ObjectId::from_raw(obj);
                    prop_assert_eq!(lru.lookup(o, off, len), cas.lookup(o, off, len));
                    prop_assert_eq!(lru.probe(o, off, len), cas.probe(o, off, len));
                }
                CacheOp::EvictObj { obj } => {
                    lru.evict_object(ObjectId::from_raw(obj));
                    cas.evict_object(ObjectId::from_raw(obj));
                }
                CacheOp::Clear => {
                    lru.clear();
                    cas.clear();
                }
            }
            prop_assert_eq!(lru.used_bytes(), cas.used_bytes());
            prop_assert_eq!(lru.logical_bytes(), cas.logical_bytes());
            prop_assert_eq!(lru.stats(), cas.stats());
        }
    }

    /// GuestFs resolve() agrees with a byte-level reference model for
    /// random create/append sequences, including interleaved files.
    #[test]
    fn fs_resolve_matches_reference(
        appends in proptest::collection::vec((0usize..4, 1u64..5000), 1..40),
        probe in (0usize..4, 0u64..10_000, 1u64..6_000),
    ) {
        let mut fs = GuestFs::new(ObjectId::from_raw(1));
        // reference: per file, the list of image offsets of each byte
        let mut model: Vec<Vec<u64>> = vec![Vec::new(); 4];
        let mut ids = Vec::new();
        for i in 0..4 {
            ids.push(fs.create(&format!("/f{i}")).unwrap());
        }
        let mut image_pos = 0u64;
        for &(fi, len) in &appends {
            fs.append(ids[fi], len);
            for b in 0..len {
                model[fi].push(image_pos + b);
            }
            image_pos += len;
        }
        let (fi, off, len) = probe;
        let size = fs.size(ids[fi]);
        prop_assert_eq!(size as usize, model[fi].len());
        match fs.resolve(ids[fi], off, len) {
            Ok(extents) => {
                prop_assert!(off + len <= size);
                // flatten extents into byte positions
                let mut got = Vec::new();
                for e in &extents {
                    for b in 0..e.len {
                        got.push(e.image_offset + b);
                    }
                }
                let want: Vec<u64> =
                    model[fi][off as usize..(off + len) as usize].to_vec();
                prop_assert_eq!(got, want, "extent bytes diverge from model");
            }
            Err(FsError::BeyondEof(..)) => {
                prop_assert!(off + len > size, "spurious EOF error");
            }
            Err(e) => prop_assert!(false, "unexpected error {e:?}"),
        }
    }

    /// Snapshots are immune to later namespace changes until refreshed.
    #[test]
    fn snapshot_isolation(paths in proptest::collection::hash_set("[a-z]{1,6}", 1..8)) {
        let mut fs = GuestFs::new(ObjectId::from_raw(2));
        let paths: Vec<String> = paths.into_iter().collect();
        let (pre, post) = paths.split_at(paths.len() / 2);
        for p in pre {
            fs.create(&format!("/{p}")).unwrap();
        }
        let snap = fs.snapshot();
        for p in post {
            fs.create(&format!("/{p}")).unwrap();
        }
        for p in pre {
            let hit = snap.lookup(&format!("/{p}")).is_some();
            prop_assert!(hit);
        }
        for p in post {
            let miss = snap.lookup(&format!("/{p}")).is_none();
            prop_assert!(miss);
        }
        let mut snap2 = snap.clone();
        snap2.refresh(&fs);
        for p in paths.iter() {
            let hit2 = snap2.lookup(&format!("/{p}")).is_some();
            prop_assert!(hit2);
        }
    }
}

//! Hive select query (the paper's Table 3, left column).
//!
//! `select * from test where id >= x and id <= y` over a 30-million-row
//! table stored in HDFS: a Map/Reduce scan that streams the table files
//! and filters each row. Per-row parse/filter CPU runs in the client VM;
//! the bytes come through the genuine `DfsClient` path.

use vread_hdfs::client::{DfsRead, DfsReadDone};
use vread_host::cluster::{Cluster, VmId};
use vread_sim::prelude::*;

/// Hive cost knobs.
#[derive(Debug, Clone)]
pub struct HiveConfig {
    /// Serialized row size (the paper's user-info rows).
    pub row_bytes: u64,
    /// Cycles to deserialize + filter one row.
    pub row_cycles: u64,
    /// Scan buffer per read.
    pub buffer_bytes: u64,
    /// Query plan setup cost.
    pub setup_cycles: u64,
}

impl Default for HiveConfig {
    fn default() -> Self {
        HiveConfig {
            row_bytes: 100,
            row_cycles: 560,
            buffer_bytes: 1 << 20,
            setup_cycles: 400_000_000,
        }
    }
}

/// A Hive select-scan query actor.
///
/// Metrics: `hive_rows`, `hive_done`, `hive_done_at_s`.
pub struct HiveQuery {
    client: ActorId,
    vm: VmId,
    table: String,
    rows: u64,
    cfg: HiveConfig,
    offset: u64,
    bytes_seen: u64,
    req: u64,
    job: Option<JobHandle>,
}

struct SetupDone;
struct FilterDone {
    rows: u64,
    bytes: u64,
}

impl HiveQuery {
    /// Creates a query scanning `rows` rows of `table`.
    pub fn new(client: ActorId, vm: VmId, table: String, rows: u64, cfg: HiveConfig) -> Self {
        HiveQuery {
            client,
            vm,
            table,
            rows,
            cfg,
            offset: 0,
            bytes_seen: 0,
            req: 0,
            job: None,
        }
    }

    /// Binds a completion token: the query signals start, per-buffer
    /// progress and completion on `job` in addition to its metrics.
    pub fn with_job(mut self, job: JobHandle) -> Self {
        self.job = Some(job);
        self
    }

    /// The table's size for [`vread_hdfs::populate_file`].
    pub fn table_bytes(rows: u64, cfg: &HiveConfig) -> u64 {
        rows * cfg.row_bytes
    }

    fn vcpu(&self, ctx: &Ctx<'_>) -> ThreadId {
        ctx.world
            .ext
            .get::<Cluster>()
            .expect("cluster")
            .vm(self.vm)
            .vcpu
    }

    fn issue(&mut self, ctx: &mut Ctx<'_>) {
        let total = self.rows * self.cfg.row_bytes;
        if self.offset >= total {
            ctx.metrics().add("hive_done", 1.0);
            let s = ctx.now().as_secs_f64();
            ctx.metrics().sample("hive_done_at_s", s);
            if let Some(j) = self.job {
                ctx.job_completed(j);
            }
            return;
        }
        let len = self.cfg.buffer_bytes.min(total - self.offset);
        self.req += 1;
        let me = ctx.me();
        ctx.send(
            self.client,
            DfsRead {
                req: self.req,
                reply_to: me,
                path: self.table.clone(),
                offset: self.offset,
                len,
                pread: false,
            },
        );
        self.offset += len;
    }
}

impl Actor for HiveQuery {
    fn handle(&mut self, msg: BoxMsg, ctx: &mut Ctx<'_>) {
        if msg.is::<Start>() {
            let now_s = ctx.now().as_secs_f64();
            ctx.metrics().sample("hive_start_at_s", now_s);
            if let Some(j) = self.job {
                ctx.job_started(j);
            }
            let vcpu = self.vcpu(ctx);
            let me = ctx.me();
            ctx.chain(
                vec![Stage::cpu(
                    vcpu,
                    self.cfg.setup_cycles,
                    CpuCategory::MapReduce,
                )],
                me,
                SetupDone,
            );
            return;
        }
        if msg.is::<SetupDone>() {
            self.issue(ctx);
            return;
        }
        let msg = match downcast::<DfsReadDone>(msg) {
            Ok(d) => {
                // row count from cumulative bytes so buffer boundaries
                // that split rows are not dropped
                let before = self.bytes_seen / self.cfg.row_bytes;
                self.bytes_seen += d.bytes;
                let rows = self.bytes_seen / self.cfg.row_bytes - before;
                let vcpu = self.vcpu(ctx);
                let me = ctx.me();
                ctx.chain(
                    vec![Stage::cpu(
                        vcpu,
                        rows * self.cfg.row_cycles,
                        CpuCategory::MapReduce,
                    )],
                    me,
                    FilterDone {
                        rows,
                        bytes: d.bytes,
                    },
                );
                return;
            }
            Err(m) => m,
        };
        if let Ok(f) = downcast::<FilterDone>(msg) {
            ctx.metrics().add("hive_rows", f.rows as f64);
            if let Some(j) = self.job {
                ctx.job_progress(j, f.bytes, f.rows);
            }
            self.issue(ctx);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vread_hdfs::client::{add_client, VanillaPath};
    use vread_hdfs::deploy_hdfs;
    use vread_hdfs::populate::{populate_file, Placement};
    use vread_host::costs::Costs;

    #[test]
    fn query_scans_all_rows() {
        let mut w = World::new(31);
        let mut cl = Cluster::new(Costs::default());
        let h = cl.add_host(&mut w, "h", 4, 2.0);
        let cvm = cl.add_vm(&mut w, h, "client");
        let dvm = cl.add_vm(&mut w, h, "dn");
        w.ext.insert(cl);
        let (_, dns) = deploy_hdfs(&mut w, cvm, &[dvm]);
        let cfg = HiveConfig::default();
        let rows = 100_000u64;
        populate_file(
            &mut w,
            "/hive/test",
            HiveQuery::table_bytes(rows, &cfg),
            &Placement::One(dns[0]),
        );
        let client = add_client(&mut w, cvm, Box::new(VanillaPath::new()));
        let q = HiveQuery::new(client, cvm, "/hive/test".into(), rows, cfg);
        let a = w.add_actor("hive", q);
        w.send_now(a, Start);
        w.run();
        assert_eq!(w.metrics.counter("hive_done"), 1.0);
        assert_eq!(w.metrics.counter("hive_rows"), rows as f64);
        let secs = w.metrics.mean("hive_done_at_s") - w.metrics.mean("hive_start_at_s");
        assert!(secs > 0.0);
    }
}

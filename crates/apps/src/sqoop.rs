//! Sqoop export — HDFS → MySQL (the paper's Table 3, right column).
//!
//! The export job reads the table from HDFS, serializes rows, and ships
//! INSERT batches to a MySQL server on another physical machine. The
//! MySQL side has its own service cost, so the job is bounded by *both*
//! the HDFS read efficiency and the insert rate — which is why the paper
//! measures a smaller (≈11%) improvement here.

use vread_hdfs::client::{DfsRead, DfsReadDone};
use vread_host::cluster::{with_cluster, Cluster, HostIx, VmId};
use vread_net::conn::{add_conn, ConnRecv, ConnSend, ConnSpec, Endpoint, Flavor, Side};
use vread_sim::prelude::*;

/// Sqoop/MySQL cost knobs.
#[derive(Debug, Clone)]
pub struct SqoopConfig {
    /// Serialized row size.
    pub row_bytes: u64,
    /// Sqoop-side cycles to serialize one row into an INSERT batch.
    pub serialize_row_cycles: u64,
    /// MySQL-side cycles to parse + insert one row.
    pub mysql_row_cycles: u64,
    /// Rows per INSERT batch on the wire.
    pub batch_rows: u64,
    /// Batches in flight (read/insert pipelining).
    pub window: usize,
}

impl Default for SqoopConfig {
    fn default() -> Self {
        SqoopConfig {
            row_bytes: 100,
            serialize_row_cycles: 2_500,
            mysql_row_cycles: 15_000,
            batch_rows: 2_000,
            // Sqoop map tasks read, serialize and insert synchronously.
            window: 1,
        }
    }
}

/// The MySQL server process on a (physical) database host.
pub struct MysqlServer {
    thread: ThreadId,
    row_cycles: u64,
}

struct InsertDone {
    conn: ActorId,
    side: Side,
    tag: u64,
}

impl MysqlServer {
    /// Creates a server whose inserts run on `thread`.
    pub fn new(thread: ThreadId, row_cycles: u64) -> Self {
        MysqlServer { thread, row_cycles }
    }
}

impl Actor for MysqlServer {
    fn handle(&mut self, msg: BoxMsg, ctx: &mut Ctx<'_>) {
        let msg = match downcast::<ConnRecv>(msg) {
            Ok(r) => {
                // bytes → rows (batch framing is row_bytes-per-row)
                let rows = (r.bytes / 100).max(1);
                let me = ctx.me();
                ctx.chain(
                    vec![Stage::cpu(
                        self.thread,
                        rows * self.row_cycles,
                        CpuCategory::Mysql,
                    )],
                    me,
                    InsertDone {
                        conn: r.conn,
                        side: r.side,
                        tag: r.tag,
                    },
                );
                return;
            }
            Err(m) => m,
        };
        if let Ok(d) = downcast::<InsertDone>(msg) {
            ctx.send(
                d.conn,
                ConnSend {
                    dir: d.side,
                    bytes: 64,
                    tag: d.tag,
                    notify: false,
                    span: SpanId::NONE,
                },
            );
        }
    }
}

/// The Sqoop export job actor.
///
/// Metrics: `sqoop_rows`, `sqoop_done`, `sqoop_done_at_s`.
pub struct SqoopExport {
    client: ActorId,
    vm: VmId,
    table: String,
    rows: u64,
    cfg: SqoopConfig,
    mysql_conn: ActorId,
    read_offset: u64,
    rows_acked: u64,
    batches_inflight: usize,
    pending_read: bool,
    req: u64,
    job: Option<JobHandle>,
}

struct SerializeDone {
    rows: u64,
}

impl SqoopExport {
    /// Creates the export job; `mysql_conn` is the connection to the
    /// MySQL server (see [`deploy_sqoop`]).
    pub fn new(
        client: ActorId,
        vm: VmId,
        table: String,
        rows: u64,
        cfg: SqoopConfig,
        mysql_conn: ActorId,
    ) -> Self {
        SqoopExport {
            client,
            vm,
            table,
            rows,
            cfg,
            mysql_conn,
            read_offset: 0,
            rows_acked: 0,
            batches_inflight: 0,
            pending_read: false,
            req: 0,
            job: None,
        }
    }

    /// Binds a completion token: the export signals start, per-batch
    /// progress and completion on `job` in addition to its metrics.
    pub fn with_job(mut self, job: JobHandle) -> Self {
        self.job = Some(job);
        self
    }

    /// Table bytes for population.
    pub fn table_bytes(rows: u64, cfg: &SqoopConfig) -> u64 {
        rows * cfg.row_bytes
    }

    fn vcpu(&self, ctx: &Ctx<'_>) -> ThreadId {
        ctx.world
            .ext
            .get::<Cluster>()
            .expect("cluster")
            .vm(self.vm)
            .vcpu
    }

    fn pump(&mut self, ctx: &mut Ctx<'_>) {
        let total = self.rows * self.cfg.row_bytes;
        if self.rows_acked >= self.rows {
            ctx.metrics().add("sqoop_done", 1.0);
            let s = ctx.now().as_secs_f64();
            ctx.metrics().sample("sqoop_done_at_s", s);
            if let Some(j) = self.job {
                ctx.job_completed(j);
            }
            return;
        }
        if self.pending_read
            || self.batches_inflight >= self.cfg.window
            || self.read_offset >= total
        {
            return;
        }
        let len = (self.cfg.batch_rows * self.cfg.row_bytes).min(total - self.read_offset);
        self.pending_read = true;
        self.req += 1;
        let me = ctx.me();
        ctx.send(
            self.client,
            DfsRead {
                req: self.req,
                reply_to: me,
                path: self.table.clone(),
                offset: self.read_offset,
                len,
                // each export batch is fetched by a fresh record reader
                pread: true,
            },
        );
        self.read_offset += len;
    }
}

impl Actor for SqoopExport {
    fn handle(&mut self, msg: BoxMsg, ctx: &mut Ctx<'_>) {
        if msg.is::<Start>() {
            let now_s = ctx.now().as_secs_f64();
            ctx.metrics().sample("sqoop_start_at_s", now_s);
            if let Some(j) = self.job {
                ctx.job_started(j);
            }
            self.pump(ctx);
            return;
        }
        let msg = match downcast::<BindConn>(msg) {
            Ok(b) => {
                self.bind(b.0);
                return;
            }
            Err(m) => m,
        };
        let msg = match downcast::<DfsReadDone>(msg) {
            Ok(d) => {
                self.pending_read = false;
                let rows = d.bytes / self.cfg.row_bytes;
                let vcpu = self.vcpu(ctx);
                let me = ctx.me();
                ctx.chain(
                    vec![Stage::cpu(
                        vcpu,
                        rows * self.cfg.serialize_row_cycles,
                        CpuCategory::MapReduce,
                    )],
                    me,
                    SerializeDone { rows },
                );
                return;
            }
            Err(m) => m,
        };
        let msg = match downcast::<SerializeDone>(msg) {
            Ok(s) => {
                self.batches_inflight += 1;
                ctx.send(
                    self.mysql_conn,
                    ConnSend {
                        dir: Side::A,
                        bytes: s.rows * self.cfg.row_bytes,
                        tag: s.rows, // tag carries the batch row count
                        notify: false,
                        span: SpanId::NONE,
                    },
                );
                self.pump(ctx);
                return;
            }
            Err(m) => m,
        };
        if let Ok(r) = downcast::<ConnRecv>(msg) {
            // MySQL ack: the tag is the row count of the acked batch
            self.batches_inflight -= 1;
            self.rows_acked += r.tag;
            ctx.metrics().add("sqoop_rows", r.tag as f64);
            if let Some(j) = self.job {
                ctx.job_progress(j, r.tag * self.cfg.row_bytes, r.tag);
            }
            self.pump(ctx);
        }
    }
}

/// Deploys a MySQL server on `db_host` and a Sqoop export job in
/// `client_vm` shipping to it. Returns the export actor (send [`Start`]).
pub fn deploy_sqoop(
    w: &mut World,
    client_vm: VmId,
    db_host: HostIx,
    dfs_client: ActorId,
    table: String,
    rows: u64,
    cfg: SqoopConfig,
) -> ActorId {
    deploy_sqoop_with_job(w, client_vm, db_host, dfs_client, table, rows, cfg, None)
}

/// [`deploy_sqoop`] with an optional completion token bound to the
/// export job.
#[allow(clippy::too_many_arguments)]
pub fn deploy_sqoop_with_job(
    w: &mut World,
    client_vm: VmId,
    db_host: HostIx,
    dfs_client: ActorId,
    table: String,
    rows: u64,
    cfg: SqoopConfig,
    job: Option<JobHandle>,
) -> ActorId {
    let host_id = w.ext.get::<Cluster>().expect("cluster").hosts[db_host.0].host;
    let thread = w.add_thread(host_id, "mysqld");
    let mysql = w.add_actor("mysql", MysqlServer::new(thread, cfg.mysql_row_cycles));
    // The export actor is created first so the conn can point at it.
    let mut export = SqoopExport::new(
        dfs_client,
        client_vm,
        table,
        rows,
        cfg,
        ActorId::from_raw(0),
    );
    if let Some(j) = job {
        export = export.with_job(j);
    }
    let export_slot = w.add_actor("sqoop", export);
    let conn = with_cluster(w, |cl, w| {
        add_conn(
            w,
            cl,
            Endpoint {
                actor: export_slot,
                flavor: Flavor::Guest(client_vm),
            },
            Endpoint {
                actor: mysql,
                flavor: Flavor::HostUser {
                    thread,
                    cat: CpuCategory::Mysql,
                },
            },
            ConnSpec::default(),
        )
    });
    // patch the conn id in via a bind message
    w.send_now(export_slot, BindConn(conn));
    export_slot
}

/// Internal: late-binds the MySQL connection into the export actor.
pub struct BindConn(pub ActorId);

impl SqoopExport {
    fn bind(&mut self, conn: ActorId) {
        self.mysql_conn = conn;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vread_hdfs::client::{add_client, VanillaPath};
    use vread_hdfs::deploy_hdfs;
    use vread_hdfs::populate::{populate_file, Placement};
    use vread_host::costs::Costs;

    #[test]
    fn export_ships_all_rows() {
        let mut w = World::new(41);
        let mut cl = Cluster::new(Costs::default());
        let h1 = cl.add_host(&mut w, "h1", 4, 2.0);
        let h2 = cl.add_host(&mut w, "h2", 4, 2.0);
        let cvm = cl.add_vm(&mut w, h1, "client");
        let dvm = cl.add_vm(&mut w, h1, "dn");
        w.ext.insert(cl);
        let (_, dns) = deploy_hdfs(&mut w, cvm, &[dvm]);
        let cfg = SqoopConfig::default();
        let rows = 100_000u64;
        populate_file(
            &mut w,
            "/t",
            SqoopExport::table_bytes(rows, &cfg),
            &Placement::One(dns[0]),
        );
        let client = add_client(&mut w, cvm, Box::new(VanillaPath::new()));
        let job = deploy_sqoop(&mut w, cvm, h2, client, "/t".into(), rows, cfg);
        w.send_now(job, Start);
        w.run();
        assert_eq!(w.metrics.counter("sqoop_done"), 1.0);
        assert_eq!(w.metrics.counter("sqoop_rows"), rows as f64);
        // MySQL burned insert CPU
        let mysql_cycles: f64 = (0..w.acct.len())
            .map(|t| w.acct.cycles(t, CpuCategory::Mysql))
            .sum();
        assert!(mysql_cycles > 0.0);
    }
}

//! The `lookbusy` CPU load generator.
//!
//! The paper's 4-VM experiments run two extra VMs at "85% lookbusy" to
//! take cores away from the measured VMs (Figures 3, 9, 11, 12). This
//! actor reproduces lookbusy's duty-cycle behaviour: burn the CPU for
//! `busy_fraction` of each period, sleep for the rest, forever (or until
//! an optional stop time).

use vread_sim::prelude::*;

/// LLC-contention factor for `n` 85%-duty lookbusy VMs sharing the
/// socket: each polluter costs co-runners ≈12% extra cycles per memory
/// access-heavy unit of work (calibrated so two of them reproduce the
/// ≈20% netperf TCP_RR drop of the paper's Figure 3).
pub fn llc_pressure(n_busy_vms: usize) -> f64 {
    1.0 + 0.12 * n_busy_vms as f64
}

/// One lookbusy process pinned to a thread (a vCPU in the experiments).
pub struct Lookbusy {
    thread: ThreadId,
    busy_fraction: f64,
    period: SimDuration,
    stop_at: Option<SimTime>,
}

struct BurstDone;
struct WakeUp;

impl Lookbusy {
    /// Creates a generator burning `busy_fraction` (0..1] of `thread`'s
    /// time in bursts of `period`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 < busy_fraction <= 1.0`.
    pub fn new(thread: ThreadId, busy_fraction: f64, period: SimDuration) -> Self {
        assert!(
            busy_fraction > 0.0 && busy_fraction <= 1.0,
            "busy fraction must be in (0,1]"
        );
        Lookbusy {
            thread,
            busy_fraction,
            period,
            stop_at: None,
        }
    }

    /// Stops generating load after `t` (so bounded scenarios can drain).
    pub fn until(mut self, t: SimTime) -> Self {
        self.stop_at = Some(t);
        self
    }

    /// Convenience: spawn an 85% lookbusy (the paper's setting) with a
    /// 10 ms period on `thread`.
    pub fn spawn_default(w: &mut World, thread: ThreadId) -> ActorId {
        let lb = Lookbusy::new(thread, 0.85, SimDuration::from_millis(10));
        let a = w.add_actor("lookbusy", lb);
        w.send_now(a, Start);
        a
    }

    fn burst(&self, ctx: &mut Ctx<'_>) {
        if let Some(stop) = self.stop_at {
            if ctx.now() >= stop {
                return;
            }
        }
        let ghz = {
            let host = ctx.world.thread_host(self.thread);
            ctx.world.host_ghz(host)
        };
        let busy_ns = self.period.as_nanos() as f64 * self.busy_fraction;
        let cycles = (busy_ns * ghz) as u64;
        let me = ctx.me();
        ctx.chain(
            vec![Stage::cpu(self.thread, cycles, CpuCategory::Lookbusy)],
            me,
            BurstDone,
        );
    }
}

impl Actor for Lookbusy {
    fn handle(&mut self, msg: BoxMsg, ctx: &mut Ctx<'_>) {
        if msg.is::<Start>() || msg.is::<WakeUp>() {
            self.burst(ctx);
        } else if msg.is::<BurstDone>() {
            let idle = SimDuration::from_nanos(
                (self.period.as_nanos() as f64 * (1.0 - self.busy_fraction)) as u64,
            );
            if idle == SimDuration::ZERO {
                self.burst(ctx);
            } else {
                ctx.timer(WakeUp, idle);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duty_cycle_close_to_target() {
        let mut w = World::new(1);
        let h = w.add_host("h", 1, 2.0);
        let t = w.add_thread(h, "lb");
        let lb = Lookbusy::new(t, 0.85, SimDuration::from_millis(10))
            .until(SimTime::from_nanos(500_000_000));
        let a = w.add_actor("lb", lb);
        w.send_now(a, Start);
        w.run_until(SimTime::from_nanos(500_000_000));
        let busy = w.acct.busy_ns(t.index()) as f64 / 500e6;
        assert!(
            (busy - 0.85).abs() < 0.03,
            "duty cycle {busy} should be ~0.85"
        );
    }

    #[test]
    fn full_load_saturates() {
        let mut w = World::new(1);
        let h = w.add_host("h", 1, 2.0);
        let t = w.add_thread(h, "lb");
        let lb = Lookbusy::new(t, 1.0, SimDuration::from_millis(5))
            .until(SimTime::from_nanos(100_000_000));
        let a = w.add_actor("lb", lb);
        w.send_now(a, Start);
        w.run_until(SimTime::from_nanos(100_000_000));
        let busy = w.acct.busy_ns(t.index()) as f64 / 100e6;
        assert!(busy > 0.97, "full lookbusy busy {busy}");
    }

    #[test]
    fn stops_after_deadline() {
        let mut w = World::new(1);
        let h = w.add_host("h", 1, 2.0);
        let t = w.add_thread(h, "lb");
        let lb = Lookbusy::new(t, 0.5, SimDuration::from_millis(2))
            .until(SimTime::from_nanos(10_000_000));
        let a = w.add_actor("lb", lb);
        w.send_now(a, Start);
        w.run(); // terminates because the generator stops
        assert!(w.now() < SimTime::from_nanos(20_000_000));
    }
}

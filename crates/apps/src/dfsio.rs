//! TestDFSIO — the paper's primary application benchmark (Figures 11–13).
//!
//! A real Hadoop TestDFSIO run is a Map/Reduce job whose map tasks
//! stream files from (or to) HDFS with a fixed memory buffer. The model
//! charges the Map/Reduce framework costs (task setup, per-record
//! bookkeeping) on the client VM's vCPU and drives the genuine
//! `DfsClient` read/write paths for the data.

use vread_hdfs::client::{DfsRead, DfsReadDone, DfsWrite, DfsWriteDone};
use vread_host::cluster::{Cluster, VmId};
use vread_sim::prelude::*;

/// Read or write benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DfsioMode {
    /// TestDFSIO -read
    Read,
    /// TestDFSIO -write
    Write,
}

/// Framework cost knobs (Hadoop 1.x map task behaviour).
#[derive(Debug, Clone)]
pub struct DfsioConfig {
    /// Map/Reduce framework cycles per byte moved (record/serde
    /// bookkeeping around the HDFS stream).
    pub mr_cyc_per_byte: f64,
    /// Framework cycles per I/O request.
    pub mr_request_cycles: u64,
    /// Map task setup cycles (JVM-reuse regime).
    pub task_setup_cycles: u64,
    /// Application buffer per request (the paper uses 1 MB).
    pub buffer_bytes: u64,
}

impl Default for DfsioConfig {
    fn default() -> Self {
        DfsioConfig {
            mr_cyc_per_byte: 0.4,
            mr_request_cycles: 15_000,
            task_setup_cycles: 120_000_000,
            buffer_bytes: 1 << 20,
        }
    }
}

/// The TestDFSIO driver actor.
///
/// Metrics: `dfsio_bytes` (payload moved), `dfsio_files` (completed map
/// tasks), `dfsio_done` (1 when the whole job finished) and the sample
/// `dfsio_done_at_s` (completion timestamp, seconds).
pub struct TestDfsio {
    client: ActorId,
    vm: VmId,
    mode: DfsioMode,
    files: Vec<String>,
    file_bytes: u64,
    cfg: DfsioConfig,
    cur_file: usize,
    offset: u64,
    req: u64,
    job: Option<JobHandle>,
    m_bytes: LazyCounter,
}

struct TaskReady;
struct MrDone {
    bytes: u64,
}

impl TestDfsio {
    /// Creates a driver moving `file_bytes` per file for every path in
    /// `files` through `client`.
    pub fn new(
        client: ActorId,
        vm: VmId,
        mode: DfsioMode,
        files: Vec<String>,
        file_bytes: u64,
        cfg: DfsioConfig,
    ) -> Self {
        assert!(!files.is_empty(), "need at least one file");
        TestDfsio {
            client,
            vm,
            mode,
            files,
            file_bytes,
            cfg,
            cur_file: 0,
            offset: 0,
            req: 0,
            job: None,
            m_bytes: LazyCounter::new("dfsio_bytes"),
        }
    }

    /// Binds a completion token: the driver signals start, per-buffer
    /// progress and completion on `job` in addition to its metrics.
    pub fn with_job(mut self, job: JobHandle) -> Self {
        self.job = Some(job);
        self
    }

    fn vcpu(&self, ctx: &Ctx<'_>) -> ThreadId {
        ctx.world
            .ext
            .get::<Cluster>()
            .expect("cluster")
            .vm(self.vm)
            .vcpu
    }

    fn start_task(&mut self, ctx: &mut Ctx<'_>) {
        if self.cur_file >= self.files.len() {
            ctx.metrics().add("dfsio_done", 1.0);
            let s = ctx.now().as_secs_f64();
            ctx.metrics().sample("dfsio_done_at_s", s);
            if let Some(j) = self.job {
                ctx.job_completed(j);
            }
            return;
        }
        self.offset = 0;
        let vcpu = self.vcpu(ctx);
        let me = ctx.me();
        ctx.chain(
            vec![Stage::cpu(
                vcpu,
                self.cfg.task_setup_cycles,
                CpuCategory::MapReduce,
            )],
            me,
            TaskReady,
        );
    }

    fn issue(&mut self, ctx: &mut Ctx<'_>) {
        let path = self.files[self.cur_file].clone();
        self.req += 1;
        let me = ctx.me();
        match self.mode {
            DfsioMode::Read => {
                let len = self.cfg.buffer_bytes.min(self.file_bytes - self.offset);
                ctx.send(
                    self.client,
                    DfsRead {
                        req: self.req,
                        reply_to: me,
                        path,
                        offset: self.offset,
                        len,
                        pread: false,
                    },
                );
                self.offset += len;
            }
            DfsioMode::Write => {
                // one output stream per map task; the client pipelines
                // chunks internally
                ctx.send(
                    self.client,
                    DfsWrite {
                        req: self.req,
                        reply_to: me,
                        path,
                        bytes: self.file_bytes,
                    },
                );
                self.offset = self.file_bytes;
            }
        }
    }

    fn charge_mr(&mut self, ctx: &mut Ctx<'_>, bytes: u64) {
        let vcpu = self.vcpu(ctx);
        let cycles =
            (bytes as f64 * self.cfg.mr_cyc_per_byte).round() as u64 + self.cfg.mr_request_cycles;
        let me = ctx.me();
        ctx.cpu(vcpu, cycles, CpuCategory::MapReduce, me, MrDone { bytes });
    }
}

impl Actor for TestDfsio {
    fn handle(&mut self, msg: BoxMsg, ctx: &mut Ctx<'_>) {
        if msg.is::<Start>() {
            let now_s = ctx.now().as_secs_f64();
            ctx.metrics().sample("dfsio_start_at_s", now_s);
            if let Some(j) = self.job {
                ctx.job_started(j);
            }
            self.start_task(ctx);
            return;
        }
        if msg.is::<TaskReady>() {
            self.issue(ctx);
            return;
        }
        let msg = match downcast::<DfsReadDone>(msg) {
            Ok(d) => {
                self.charge_mr(ctx, d.bytes);
                return;
            }
            Err(m) => m,
        };
        let msg = match downcast::<DfsWriteDone>(msg) {
            Ok(_) => {
                self.charge_mr(ctx, self.file_bytes);
                return;
            }
            Err(m) => m,
        };
        if let Ok(d) = downcast::<MrDone>(msg) {
            self.m_bytes.add(ctx.metrics(), d.bytes as f64);
            if let Some(j) = self.job {
                ctx.job_progress(j, d.bytes, 1);
            }
            if self.mode == DfsioMode::Read && self.offset < self.file_bytes && d.bytes > 0 {
                self.issue(ctx);
            } else {
                ctx.metrics().incr("dfsio_files");
                self.cur_file += 1;
                self.start_task(ctx);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vread_hdfs::client::{add_client, VanillaPath};
    use vread_hdfs::deploy_hdfs;
    use vread_hdfs::populate::{populate_file, Placement};
    use vread_host::costs::Costs;

    #[test]
    fn dfsio_reads_all_files() {
        let mut w = World::new(4);
        let mut cl = Cluster::new(Costs::default());
        let h = cl.add_host(&mut w, "h", 4, 3.2);
        let cvm = cl.add_vm(&mut w, h, "client");
        let dvm = cl.add_vm(&mut w, h, "dn");
        w.ext.insert(cl);
        let (_, dns) = deploy_hdfs(&mut w, cvm, &[dvm]);
        for i in 0..3 {
            populate_file(
                &mut w,
                &format!("/io/{i}"),
                4 << 20,
                &Placement::One(dns[0]),
            );
        }
        let client = add_client(&mut w, cvm, Box::new(VanillaPath::new()));
        let files = (0..3).map(|i| format!("/io/{i}")).collect();
        let d = TestDfsio::new(
            client,
            cvm,
            DfsioMode::Read,
            files,
            4 << 20,
            DfsioConfig::default(),
        );
        let a = w.add_actor("dfsio", d);
        w.send_now(a, Start);
        w.run();
        assert_eq!(w.metrics.counter("dfsio_done"), 1.0);
        assert_eq!(w.metrics.counter("dfsio_files"), 3.0);
        assert_eq!(w.metrics.counter("dfsio_bytes"), (12 << 20) as f64);
    }

    #[test]
    fn dfsio_write_creates_files() {
        let mut w = World::new(4);
        let mut cl = Cluster::new(Costs::default());
        let h = cl.add_host(&mut w, "h", 4, 3.2);
        let cvm = cl.add_vm(&mut w, h, "client");
        let dvm = cl.add_vm(&mut w, h, "dn");
        w.ext.insert(cl);
        deploy_hdfs(&mut w, cvm, &[dvm]);
        let client = add_client(&mut w, cvm, Box::new(VanillaPath::new()));
        let d = TestDfsio::new(
            client,
            cvm,
            DfsioMode::Write,
            vec!["/out/0".into(), "/out/1".into()],
            2 << 20,
            DfsioConfig::default(),
        );
        let a = w.add_actor("dfsio", d);
        w.send_now(a, Start);
        w.run();
        assert_eq!(w.metrics.counter("dfsio_done"), 1.0);
        let meta = w.ext.get::<vread_hdfs::HdfsMeta>().unwrap();
        assert_eq!(meta.file("/out/0").unwrap().size(), 2 << 20);
        assert_eq!(meta.file("/out/1").unwrap().size(), 2 << 20);
    }
}

//! HBase PerformanceEvaluation — scan / sequentialRead / randomRead
//! (the paper's Table 2).
//!
//! HBase stores its regions as HFiles on HDFS; every operation ends up
//! reading HFile blocks (64 KB) through the HDFS client. The model
//! charges HBase's per-row CPU (KeyValue decode, comparator walks, RPC
//! machinery) on the client VM and drives real `DfsClient` block reads:
//!
//! * **scan** — forward scan over the whole table: sequential block
//!   reads, cheap per-row work;
//! * **sequentialRead** — row-by-row `get`s in key order: the block
//!   cache makes one HDFS block read serve ~64 consecutive rows, but the
//!   per-get path is much heavier;
//! * **randomRead** — `get`s of uniformly random rows: nearly every get
//!   misses the block cache and pays an HDFS block read.

use vread_hdfs::client::{DfsRead, DfsReadDone};
use vread_host::cluster::{Cluster, VmId};
use vread_sim::prelude::*;

/// PerformanceEvaluation operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HbaseOp {
    /// Whole-table scan.
    Scan,
    /// Gets in key order.
    SequentialRead,
    /// Gets of uniformly random rows.
    RandomRead,
}

/// HBase cost knobs.
#[derive(Debug, Clone)]
pub struct HbaseConfig {
    /// Value size per row (PerformanceEvaluation writes 1000-byte values).
    pub row_bytes: u64,
    /// HFile block size.
    pub block_bytes: u64,
    /// Per-row CPU on a scan.
    pub scan_row_cycles: u64,
    /// Per-row CPU on a get (seek + RPC path).
    pub get_row_cycles: u64,
    /// Probability a random get hits the HBase block cache.
    pub random_cache_hit: f64,
}

impl Default for HbaseConfig {
    fn default() -> Self {
        HbaseConfig {
            row_bytes: 1000,
            block_bytes: 64 * 1024,
            scan_row_cycles: 230_000,
            get_row_cycles: 700_000,
            random_cache_hit: 0.95,
        }
    }
}

/// The PerformanceEvaluation client actor.
///
/// Metrics: `hbase_rows`, `hbase_bytes`, `hbase_done`,
/// `hbase_done_at_s`.
pub struct HbaseClient {
    client: ActorId,
    vm: VmId,
    op: HbaseOp,
    table: String,
    rows: u64,
    cfg: HbaseConfig,
    rows_done: u64,
    cached_block: Option<u64>,
    rng: SimRng,
    req: u64,
    job: Option<JobHandle>,
}

struct RowsCpuDone {
    rows: u64,
}

impl HbaseClient {
    /// Creates a PerformanceEvaluation client running `op` over `rows`
    /// rows of `table` (an HDFS file holding the region's HFile).
    pub fn new(
        client: ActorId,
        vm: VmId,
        op: HbaseOp,
        table: String,
        rows: u64,
        cfg: HbaseConfig,
        seed: u64,
    ) -> Self {
        HbaseClient {
            client,
            vm,
            op,
            table,
            rows,
            cfg,
            rows_done: 0,
            cached_block: None,
            rng: SimRng::new(seed),
            req: 0,
            job: None,
        }
    }

    /// Binds a completion token: the client signals start, per-batch
    /// progress and completion on `job` in addition to its metrics.
    pub fn with_job(mut self, job: JobHandle) -> Self {
        self.job = Some(job);
        self
    }

    /// Total table size in bytes.
    pub fn table_bytes(rows: u64, cfg: &HbaseConfig) -> u64 {
        rows * cfg.row_bytes
    }

    fn vcpu(&self, ctx: &Ctx<'_>) -> ThreadId {
        ctx.world
            .ext
            .get::<Cluster>()
            .expect("cluster")
            .vm(self.vm)
            .vcpu
    }

    fn rows_per_block(&self) -> u64 {
        (self.cfg.block_bytes / self.cfg.row_bytes).max(1)
    }

    fn block_of_row(&self, row: u64) -> u64 {
        row * self.cfg.row_bytes / self.cfg.block_bytes
    }

    fn step(&mut self, ctx: &mut Ctx<'_>) {
        if self.rows_done >= self.rows {
            ctx.metrics().add("hbase_done", 1.0);
            let s = ctx.now().as_secs_f64();
            ctx.metrics().sample("hbase_done_at_s", s);
            if let Some(j) = self.job {
                ctx.job_completed(j);
            }
            return;
        }
        let me = ctx.me();
        match self.op {
            HbaseOp::Scan | HbaseOp::SequentialRead => {
                // scan: one sequential stream, a block of rows per fetch;
                // sequentialRead: get-style fetches of a quarter block
                let per_fetch = match self.op {
                    HbaseOp::Scan => self.rows_per_block(),
                    _ => (self.rows_per_block() / 4).max(1),
                };
                let batch = per_fetch.min(self.rows - self.rows_done);
                let block = self.block_of_row(self.rows_done);
                self.req += 1;
                let (offset, len) = match self.op {
                    HbaseOp::Scan => (block * self.cfg.block_bytes, self.cfg.block_bytes),
                    _ => (
                        self.rows_done * self.cfg.row_bytes,
                        batch * self.cfg.row_bytes,
                    ),
                };
                ctx.send(
                    self.client,
                    DfsRead {
                        req: self.req,
                        reply_to: me,
                        path: self.table.clone(),
                        offset,
                        len,
                        // every PE operation goes through scanner/get
                        // RPCs: each batch is a positional read
                        pread: true,
                    },
                );
            }
            HbaseOp::RandomRead => {
                let row = self.rng.below(self.rows);
                let block = self.block_of_row(row);
                let hit =
                    self.cached_block == Some(block) || self.rng.chance(self.cfg.random_cache_hit);
                if hit {
                    self.charge_rows(ctx, 1, 0);
                } else {
                    self.cached_block = Some(block);
                    self.req += 1;
                    ctx.send(
                        self.client,
                        DfsRead {
                            req: self.req,
                            reply_to: me,
                            path: self.table.clone(),
                            offset: block * self.cfg.block_bytes,
                            len: self.cfg.block_bytes,
                            pread: true,
                        },
                    );
                }
            }
        }
    }

    fn charge_rows(&mut self, ctx: &mut Ctx<'_>, rows: u64, _bytes_from_hdfs: u64) {
        let per_row = match self.op {
            HbaseOp::Scan => self.cfg.scan_row_cycles,
            HbaseOp::SequentialRead | HbaseOp::RandomRead => self.cfg.get_row_cycles,
        };
        let vcpu = self.vcpu(ctx);
        let me = ctx.me();
        ctx.chain(
            vec![Stage::cpu(vcpu, rows * per_row, CpuCategory::ClientApp)],
            me,
            RowsCpuDone { rows },
        );
    }
}

impl Actor for HbaseClient {
    fn handle(&mut self, msg: BoxMsg, ctx: &mut Ctx<'_>) {
        if msg.is::<Start>() {
            let now_s = ctx.now().as_secs_f64();
            ctx.metrics().sample("hbase_start_at_s", now_s);
            if let Some(j) = self.job {
                ctx.job_started(j);
            }
            self.step(ctx);
            return;
        }
        let msg = match downcast::<DfsReadDone>(msg) {
            Ok(d) => {
                let rows = match self.op {
                    HbaseOp::Scan => self.rows_per_block().min(self.rows - self.rows_done),
                    HbaseOp::SequentialRead => (self.rows_per_block() / 4)
                        .max(1)
                        .min(self.rows - self.rows_done),
                    HbaseOp::RandomRead => 1,
                };
                self.charge_rows(ctx, rows, d.bytes);
                return;
            }
            Err(m) => m,
        };
        if let Ok(rc) = downcast::<RowsCpuDone>(msg) {
            self.rows_done += rc.rows;
            ctx.metrics().add("hbase_rows", rc.rows as f64);
            ctx.metrics()
                .add("hbase_bytes", (rc.rows * self.cfg.row_bytes) as f64);
            if let Some(j) = self.job {
                ctx.job_progress(j, rc.rows * self.cfg.row_bytes, rc.rows);
            }
            self.step(ctx);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vread_hdfs::client::{add_client, VanillaPath};
    use vread_hdfs::deploy_hdfs;
    use vread_hdfs::populate::{populate_file, Placement};
    use vread_host::costs::Costs;

    fn bed() -> (World, ActorId, VmId) {
        let mut w = World::new(19);
        let mut cl = Cluster::new(Costs::default());
        let h = cl.add_host(&mut w, "h", 4, 2.0);
        let cvm = cl.add_vm(&mut w, h, "client");
        let dvm = cl.add_vm(&mut w, h, "dn");
        w.ext.insert(cl);
        let (_, dns) = deploy_hdfs(&mut w, cvm, &[dvm]);
        let cfg = HbaseConfig::default();
        let rows = 20_000u64;
        populate_file(
            &mut w,
            "/hbase/t1",
            HbaseClient::table_bytes(rows, &cfg),
            &Placement::One(dns[0]),
        );
        let client = add_client(&mut w, cvm, Box::new(VanillaPath::new()));
        (w, client, cvm)
    }

    fn run_op(op: HbaseOp) -> (f64, f64) {
        let (mut w, client, cvm) = bed();
        let hb = HbaseClient::new(
            client,
            cvm,
            op,
            "/hbase/t1".into(),
            20_000,
            HbaseConfig::default(),
            3,
        );
        let a = w.add_actor("hbase", hb);
        w.send_now(a, Start);
        w.run();
        assert_eq!(w.metrics.counter("hbase_done"), 1.0);
        assert_eq!(w.metrics.counter("hbase_rows"), 20_000.0);
        let secs = w.metrics.mean("hbase_done_at_s") - w.metrics.mean("hbase_start_at_s");
        let mbps = w.metrics.counter("hbase_bytes") / 1e6 / secs;
        (secs, mbps)
    }

    #[test]
    fn scan_fastest_gets_close_together() {
        let (_, scan) = run_op(HbaseOp::Scan);
        let (_, seq) = run_op(HbaseOp::SequentialRead);
        let (_, rand) = run_op(HbaseOp::RandomRead);
        // scans stream; gets pay the heavy per-row get path
        assert!(scan > seq * 1.5, "scan {scan} MB/s vs seq {seq} MB/s");
        assert!(scan > rand * 1.5, "scan {scan} MB/s vs random {rand} MB/s");
        // the two get-based modes land in the same ballpark (paper: 3.01
        // vs 2.48 MB/s)
        let ratio = seq / rand;
        assert!((0.7..1.5).contains(&ratio), "seq/random ratio {ratio}");
    }
}

//! # vread-apps — the workloads of the paper's evaluation
//!
//! Every application the evaluation section runs, modelled on top of the
//! genuine HDFS/vRead data paths:
//!
//! * [`lookbusy`] — the 85% duty-cycle CPU load generator used to create
//!   the 4-VM contention scenarios;
//! * [`netperf`] — TCP_RR between two VMs (Figure 3);
//! * [`java_reader`] — the plain sequential reader of Figures 2 and 9,
//!   with a local-filesystem baseline mode;
//! * [`dfsio`] — TestDFSIO read/re-read/write (Figures 11–13);
//! * [`hbase`] — HBase PerformanceEvaluation scan / sequentialRead /
//!   randomRead (Table 2);
//! * [`hive`] — the Hive select-scan query (Table 3);
//! * [`sqoop`] — Sqoop export to a MySQL host (Table 3);
//! * [`wordcount`] — the canonical MapReduce job (map → shuffle →
//!   reduce over HDFS, both read and write paths);
//! * [`driver`] — helpers for running open-ended scenarios to a
//!   completion counter.

#![forbid(unsafe_code)]

pub mod dfsio;
pub mod driver;
pub mod hbase;
pub mod hive;
pub mod java_reader;
pub mod lookbusy;
pub mod netperf;
pub mod sqoop;
pub mod wordcount;

pub use dfsio::{DfsioConfig, DfsioMode, TestDfsio};
pub use driver::{complete_job_after, elapsed_secs, run_jobs, run_jobs_settled, run_until_counter};
pub use hbase::{HbaseClient, HbaseConfig, HbaseOp};
pub use hive::{HiveConfig, HiveQuery};
pub use java_reader::{JavaReader, ReaderMode};
pub use lookbusy::Lookbusy;
pub use netperf::{deploy_netperf, deploy_netperf_with_job, NetperfClient, NetperfServer};
pub use sqoop::{deploy_sqoop, deploy_sqoop_with_job, MysqlServer, SqoopConfig, SqoopExport};
pub use wordcount::{WordCount, WordCountConfig};

//! Experiment driving helpers.
//!
//! Scenarios with background load (lookbusy) never run out of events, so
//! harnesses can't just `run()` the world dry. The drive layer is
//! event-driven: workloads signal a [`JobHandle`] when they finish and
//! [`run_jobs`] / [`run_jobs_settled`] advance the world until every
//! registered job completes (or a simulated-time cap fires). The legacy
//! [`run_until_counter`] slice-poller is retained only for its own tests
//! as a reference for what the job primitives replaced.

use vread_sim::prelude::*;

/// Runs the world until every registered job completes, up to `cap` of
/// simulated time. Returns `true` if all jobs finished. The clock stops
/// exactly at the last completing event.
pub fn run_jobs(w: &mut World, cap: SimDuration) -> bool {
    w.run_jobs_for(cap)
}

/// Like [`run_jobs`], but advances the world in `align` slices and stops
/// on the first slice boundary where every job has completed — the exact
/// instant (and, crucially, the exact `run_until` call sequence) the
/// legacy slice-polling driver produced.
///
/// Completion detection is still event-driven — elapsed times come from
/// the job table's event-exact timestamps, so measurements carry no
/// polling-granularity error. The slicing only affects where
/// free-running background actors (lookbusy) stop accruing busy time and
/// where partial CPU charges materialize; both must match the polling
/// era for whole-world snapshots (reports, multi-pass experiment phase)
/// to stay byte-identical. Stepping straight to the completion event and
/// then settling is *not* equivalent: charging a running core in
/// different chunks changes f64 rounding of its remaining cycles, which
/// shifts work-end timers by nanoseconds and cascades under contention.
pub fn run_jobs_settled(w: &mut World, cap: SimDuration, align: SimDuration) -> bool {
    let deadline = w.now() + cap;
    while w.jobs.pending() > 0 {
        if w.now() >= deadline {
            return false;
        }
        let next = (w.now() + align).min(deadline);
        w.run_until(next);
    }
    true
}

/// Completes `job` after `delay` of simulated time — for
/// duration-bounded workloads (netperf measurement windows) that never
/// signal completion themselves.
pub fn complete_job_after(w: &mut World, job: JobHandle, delay: SimDuration) {
    struct Deadline {
        job: JobHandle,
    }
    impl Actor for Deadline {
        fn handle(&mut self, msg: BoxMsg, ctx: &mut Ctx<'_>) {
            if msg.is::<Start>() {
                ctx.job_completed(self.job);
            }
        }
    }
    let a = w.add_actor("job-deadline", Deadline { job });
    w.send_after(a, Start, delay);
}

/// Runs the world until metric counter `key` reaches `target`, advancing
/// in `slice` steps, up to `cap` of simulated time. Returns `true` if the
/// target was reached.
pub fn run_until_counter(
    w: &mut World,
    key: &str,
    target: f64,
    slice: SimDuration,
    cap: SimDuration,
) -> bool {
    let deadline = w.now() + cap;
    while w.metrics.counter(key) < target {
        if w.now() >= deadline {
            return false;
        }
        let next = (w.now() + slice).min(deadline);
        w.run_until(next);
    }
    true
}

/// Elapsed seconds between two timestamp samples recorded with
/// `metrics.sample("<k>_start_at_s" / "<k>_done_at_s", …)`.
pub fn elapsed_secs(w: &World, prefix: &str) -> f64 {
    let start = w.metrics.mean(&format!("{prefix}_start_at_s"));
    let done = w.metrics.mean(&format!("{prefix}_done_at_s"));
    (done - start).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Ticker;
    struct Tick;
    impl Actor for Ticker {
        fn handle(&mut self, msg: BoxMsg, ctx: &mut Ctx<'_>) {
            if msg.is::<Start>() || msg.is::<Tick>() {
                ctx.metrics().incr("ticks");
                ctx.timer(Tick, SimDuration::from_millis(1));
            }
        }
    }

    #[test]
    fn reaches_target() {
        let mut w = World::new(1);
        let a = w.add_actor("t", Ticker);
        w.send_now(a, Start);
        let ok = run_until_counter(
            &mut w,
            "ticks",
            5.0,
            SimDuration::from_millis(1),
            SimDuration::from_secs(1),
        );
        assert!(ok);
        assert!(w.metrics.counter("ticks") >= 5.0);
    }

    #[test]
    fn caps_out() {
        let mut w = World::new(1);
        let a = w.add_actor("t", Ticker);
        w.send_now(a, Start);
        let ok = run_until_counter(
            &mut w,
            "never",
            1.0,
            SimDuration::from_millis(1),
            SimDuration::from_millis(10),
        );
        assert!(!ok);
    }

    /// Completes a job after `ticks` 1 ms timer ticks, then keeps
    /// ticking forever (background-load shape).
    struct JobTicker {
        job: JobHandle,
        ticks: u32,
    }
    impl Actor for JobTicker {
        fn handle(&mut self, msg: BoxMsg, ctx: &mut Ctx<'_>) {
            if msg.is::<Start>() || msg.is::<Tick>() {
                if self.ticks > 0 {
                    self.ticks -= 1;
                    if self.ticks == 0 {
                        ctx.job_completed(self.job);
                    }
                }
                ctx.timer(Tick, SimDuration::from_millis(1));
            }
        }
    }

    #[test]
    fn run_jobs_stops_at_completion_event() {
        let mut w = World::new(1);
        let job = w.register_job("t");
        let a = w.add_actor("t", JobTicker { job, ticks: 7 });
        w.send_now(a, Start);
        assert!(run_jobs(&mut w, SimDuration::from_secs(1)));
        assert_eq!(w.now(), SimTime::from_nanos(6_000_000));
    }

    #[test]
    fn run_jobs_settled_lands_on_the_legacy_polling_boundary() {
        // completion at 6 ms, 4 ms slices → the slice poller stopped at
        // 8 ms; the settled driver must land on the same instant.
        let mut w = World::new(1);
        let job = w.register_job("t");
        let a = w.add_actor("t", JobTicker { job, ticks: 7 });
        w.send_now(a, Start);
        assert!(run_jobs_settled(
            &mut w,
            SimDuration::from_secs(1),
            SimDuration::from_millis(4)
        ));
        assert_eq!(w.now(), SimTime::from_nanos(8_000_000));
    }

    #[test]
    fn complete_job_after_bounds_free_running_work() {
        let mut w = World::new(1);
        let a = w.add_actor("t", Ticker);
        w.send_now(a, Start);
        let job = w.register_job("window");
        complete_job_after(&mut w, job, SimDuration::from_millis(5));
        assert!(run_jobs(&mut w, SimDuration::from_secs(1)));
        assert_eq!(w.now(), SimTime::from_nanos(5_000_000));
    }
}

//! Experiment driving helpers.
//!
//! Scenarios with background load (lookbusy) never run out of events, so
//! harnesses advance the world in slices until a completion counter
//! reaches its target (or a simulated-time cap fires).

use vread_sim::prelude::*;

/// Runs the world until metric counter `key` reaches `target`, advancing
/// in `slice` steps, up to `cap` of simulated time. Returns `true` if the
/// target was reached.
pub fn run_until_counter(
    w: &mut World,
    key: &str,
    target: f64,
    slice: SimDuration,
    cap: SimDuration,
) -> bool {
    let deadline = w.now() + cap;
    while w.metrics.counter(key) < target {
        if w.now() >= deadline {
            return false;
        }
        let next = (w.now() + slice).min(deadline);
        w.run_until(next);
    }
    true
}

/// Elapsed seconds between two timestamp samples recorded with
/// `metrics.sample("<k>_start_at_s" / "<k>_done_at_s", …)`.
pub fn elapsed_secs(w: &World, prefix: &str) -> f64 {
    let start = w.metrics.mean(&format!("{prefix}_start_at_s"));
    let done = w.metrics.mean(&format!("{prefix}_done_at_s"));
    (done - start).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Ticker;
    struct Tick;
    impl Actor for Ticker {
        fn handle(&mut self, msg: BoxMsg, ctx: &mut Ctx<'_>) {
            if msg.is::<Start>() || msg.is::<Tick>() {
                ctx.metrics().incr("ticks");
                ctx.timer(Tick, SimDuration::from_millis(1));
            }
        }
    }

    #[test]
    fn reaches_target() {
        let mut w = World::new(1);
        let a = w.add_actor("t", Ticker);
        w.send_now(a, Start);
        let ok = run_until_counter(
            &mut w,
            "ticks",
            5.0,
            SimDuration::from_millis(1),
            SimDuration::from_secs(1),
        );
        assert!(ok);
        assert!(w.metrics.counter("ticks") >= 5.0);
    }

    #[test]
    fn caps_out() {
        let mut w = World::new(1);
        let a = w.add_actor("t", Ticker);
        w.send_now(a, Start);
        let ok = run_until_counter(
            &mut w,
            "never",
            1.0,
            SimDuration::from_millis(1),
            SimDuration::from_millis(10),
        );
        assert!(!ok);
    }
}

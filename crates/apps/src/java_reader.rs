//! The plain-Java measurement application of Figures 2 and 9.
//!
//! Reads a file sequentially with a fixed request (application buffer)
//! size and records the delay of every request. Two modes:
//!
//! * **Local** — `read()` from the VM's own filesystem (the Figure 2
//!   baseline: 2 copies, no network);
//! * **Dfs** — through a `DfsClient` (vanilla or vRead path), the
//!   inter-VM flow under study.

use vread_hdfs::client::{DfsRead, DfsReadDone};
use vread_host::cluster::{with_cluster, VmId};
use vread_host::virtio::guest_disk_read;
use vread_sim::prelude::*;

/// Where the reader gets its bytes.
#[derive(Debug, Clone)]
pub enum ReaderMode {
    /// Read `local_path` from the reader VM's own filesystem.
    Local {
        /// Path within the VM's guest filesystem.
        path: String,
    },
    /// Read an HDFS path through the given client actor.
    Dfs {
        /// The `DfsClient` actor.
        client: ActorId,
        /// HDFS path.
        path: String,
    },
}

/// Sequential reader with per-request delay sampling
/// (`reader_delay_ms`). Records `reader_done = 1` on completion.
pub struct JavaReader {
    vm: VmId,
    mode: ReaderMode,
    request_bytes: u64,
    total_bytes: u64,
    offset: u64,
    issued_at: SimTime,
    next_req: u64,
    job: Option<JobHandle>,
    m_delay_ms: LazySamples,
    m_bytes: LazyCounter,
}

struct LocalReadDone {
    bytes: u64,
}

impl JavaReader {
    /// Creates a reader in `vm` issuing `request_bytes`-sized requests
    /// until `total_bytes` have been read.
    pub fn new(vm: VmId, mode: ReaderMode, request_bytes: u64, total_bytes: u64) -> Self {
        assert!(request_bytes > 0, "request size must be positive");
        JavaReader {
            vm,
            mode,
            request_bytes,
            total_bytes,
            offset: 0,
            issued_at: SimTime::ZERO,
            next_req: 0,
            job: None,
            m_delay_ms: LazySamples::new("reader_delay_ms"),
            m_bytes: LazyCounter::new("reader_bytes"),
        }
    }

    /// Binds a completion token: the reader signals start, per-request
    /// progress and completion on `job` in addition to its metrics.
    pub fn with_job(mut self, job: JobHandle) -> Self {
        self.job = Some(job);
        self
    }

    /// Creates `path` of `bytes` size in `vm`'s local filesystem (for
    /// [`ReaderMode::Local`] runs).
    pub fn create_local_file(w: &mut World, vm: VmId, path: &str, bytes: u64) {
        with_cluster(w, |cl, _| {
            let fs = &mut cl.vm_mut(vm).fs;
            let f = fs.create(path).expect("local file path collided");
            fs.append(f, bytes);
        });
    }

    fn issue(&mut self, ctx: &mut Ctx<'_>) {
        if self.offset >= self.total_bytes {
            ctx.metrics().add("reader_done", 1.0);
            let now_s = ctx.now().as_secs_f64();
            ctx.metrics().sample("reader_done_at_s", now_s);
            if let Some(j) = self.job {
                ctx.job_completed(j);
            }
            return;
        }
        let len = self.request_bytes.min(self.total_bytes - self.offset);
        self.issued_at = ctx.now();
        self.next_req += 1;
        match self.mode.clone() {
            ReaderMode::Local { path } => {
                let me = ctx.me();
                let vm = self.vm;
                let offset = self.offset;
                let stages = with_cluster(ctx.world, |cl, _| {
                    let (extents, vcpu) = {
                        let fs = &cl.vm(vm).fs;
                        let f = fs.lookup(&path).expect("local file missing");
                        (
                            fs.resolve(f, offset, len).expect("read within file"),
                            cl.vm(vm).vcpu,
                        )
                    };
                    let mut st = Vec::new();
                    for e in extents {
                        st.extend(guest_disk_read(
                            cl,
                            vm,
                            e.image_offset,
                            e.len,
                            CpuCategory::ClientApp,
                        ));
                    }
                    // minimal per-request application work
                    st.push(Stage::cpu(vcpu, 3_000, CpuCategory::ClientApp));
                    st
                });
                ctx.chain(stages, me, LocalReadDone { bytes: len });
            }
            ReaderMode::Dfs { client, path } => {
                let me = ctx.me();
                ctx.send(
                    client,
                    DfsRead {
                        req: self.next_req,
                        reply_to: me,
                        path,
                        offset: self.offset,
                        len,
                        pread: false,
                    },
                );
            }
        }
        self.offset += len;
    }

    fn record(&self, ctx: &mut Ctx<'_>, bytes: u64) {
        let ms = ctx.now().since(self.issued_at).as_millis_f64();
        self.m_delay_ms.record(ctx.metrics(), ms);
        self.m_bytes.add(ctx.metrics(), bytes as f64);
        if let Some(j) = self.job {
            ctx.job_progress(j, bytes, 1);
        }
    }
}

impl Actor for JavaReader {
    fn handle(&mut self, msg: BoxMsg, ctx: &mut Ctx<'_>) {
        if msg.is::<Start>() {
            let now_s = ctx.now().as_secs_f64();
            ctx.metrics().sample("reader_start_at_s", now_s);
            if let Some(j) = self.job {
                ctx.job_started(j);
            }
            self.issue(ctx);
            return;
        }
        let msg = match downcast::<LocalReadDone>(msg) {
            Ok(d) => {
                self.record(ctx, d.bytes);
                self.issue(ctx);
                return;
            }
            Err(m) => m,
        };
        if let Ok(d) = downcast::<DfsReadDone>(msg) {
            self.record(ctx, d.bytes);
            self.issue(ctx);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vread_host::cluster::Cluster;
    use vread_host::costs::Costs;

    #[test]
    fn local_reader_reads_everything_and_samples_delays() {
        let mut w = World::new(9);
        let mut cl = Cluster::new(Costs::default());
        let h = cl.add_host(&mut w, "h", 4, 2.0);
        let vm = cl.add_vm(&mut w, h, "vm");
        w.ext.insert(cl);
        JavaReader::create_local_file(&mut w, vm, "/data", 8 << 20);
        let rdr = JavaReader::new(
            vm,
            ReaderMode::Local {
                path: "/data".into(),
            },
            1 << 20,
            8 << 20,
        );
        let a = w.add_actor("reader", rdr);
        w.send_now(a, Start);
        w.run();
        assert_eq!(w.metrics.counter("reader_bytes"), (8 << 20) as f64);
        assert_eq!(w.metrics.counter("reader_done"), 1.0);
        let s = w.metrics.samples("reader_delay_ms").unwrap();
        assert_eq!(s.count(), 8);
        assert!(s.mean() > 0.0);
    }

    #[test]
    fn local_reread_is_faster() {
        let mut w = World::new(9);
        let mut cl = Cluster::new(Costs::default());
        let h = cl.add_host(&mut w, "h", 4, 2.0);
        let vm = cl.add_vm(&mut w, h, "vm");
        w.ext.insert(cl);
        JavaReader::create_local_file(&mut w, vm, "/data", 4 << 20);
        for pass in 0..2 {
            let rdr = JavaReader::new(
                vm,
                ReaderMode::Local {
                    path: "/data".into(),
                },
                1 << 20,
                4 << 20,
            );
            let a = w.add_actor(&format!("reader{pass}"), rdr);
            w.send_now(a, Start);
            w.run();
        }
        let s = w.metrics.samples("reader_delay_ms").unwrap();
        // vread-lint: allow(float-accum, "samples slice is in fixed insertion order")
        let cold: f64 = s.values()[..4].iter().sum::<f64>() / 4.0;
        // vread-lint: allow(float-accum, "samples slice is in fixed insertion order")
        let warm: f64 = s.values()[4..].iter().sum::<f64>() / 4.0;
        assert!(warm < cold * 0.5, "warm {warm}ms vs cold {cold}ms");
    }
}

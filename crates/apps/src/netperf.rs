//! netperf TCP_RR between two VMs (the paper's Figure 3 microbenchmark).
//!
//! A client VM sends a request of `request_bytes` to a server VM over the
//! virtio-net TCP path; the server replies with a small response; the
//! client counts transactions. Under CPU contention (two extra lookbusy
//! VMs on a quad-core host) the per-transaction thread wake-ups absorb
//! run-queue delay and the rate drops — the "I/O threads synchronization
//! overhead" the paper measures.

use vread_host::cluster::{with_cluster, Cluster, VmId};
use vread_net::conn::{add_conn, ConnRecv, ConnSend, ConnSpec, Endpoint, Flavor, Side};
use vread_sim::prelude::*;

/// Per-transaction application CPU on each side (request build / parse).
const APP_CYCLES: u64 = 4_000;

/// The echo server half.
pub struct NetperfServer {
    vm: VmId,
    response_bytes: u64,
}

impl NetperfServer {
    /// Creates a server in `vm` responding with `response_bytes` frames.
    pub fn new(vm: VmId, response_bytes: u64) -> Self {
        NetperfServer { vm, response_bytes }
    }
}

impl Actor for NetperfServer {
    fn handle(&mut self, msg: BoxMsg, ctx: &mut Ctx<'_>) {
        if let Ok(r) = downcast::<ConnRecv>(msg) {
            let vcpu = {
                let cl = ctx.world.ext.get::<Cluster>().expect("cluster");
                cl.vm(self.vm).vcpu
            };
            let resp = ConnSend {
                dir: r.side,
                bytes: self.response_bytes,
                tag: r.tag,
                notify: false,
                span: SpanId::NONE,
            };
            // server-side request handling, then respond
            ctx.chain(
                vec![Stage::cpu(vcpu, APP_CYCLES, CpuCategory::ClientApp)],
                r.conn,
                resp,
            );
        }
    }
}

/// The requesting half; records `netperf_txns` and per-transaction
/// latency samples (`netperf_rtt_ms`).
pub struct NetperfClient {
    vm: VmId,
    conn: Option<ActorId>,
    server: ActorId,
    server_vm: VmId,
    request_bytes: u64,
    seq: u64,
    sent_at: SimTime,
    /// Transactions are only counted after this time (warm-up).
    pub measure_from: SimTime,
    job: Option<JobHandle>,
    m_txns: LazyCounter,
    m_rtt_ms: LazySamples,
}

impl NetperfClient {
    /// Creates a client in `vm` issuing `request_bytes` requests to
    /// `server` (in `server_vm`).
    pub fn new(vm: VmId, server: ActorId, server_vm: VmId, request_bytes: u64) -> Self {
        NetperfClient {
            vm,
            conn: None,
            server,
            server_vm,
            request_bytes,
            seq: 0,
            sent_at: SimTime::ZERO,
            measure_from: SimTime::ZERO,
            job: None,
            m_txns: LazyCounter::new("netperf_txns"),
            m_rtt_ms: LazySamples::new("netperf_rtt_ms"),
        }
    }

    /// Binds a completion token: the client signals start and one op of
    /// progress per counted transaction. netperf runs for a fixed window
    /// and never completes on its own — bound it with
    /// `complete_job_after`.
    pub fn with_job(mut self, job: JobHandle) -> Self {
        self.job = Some(job);
        self
    }

    fn fire(&mut self, ctx: &mut Ctx<'_>) {
        let conn = match self.conn {
            Some(c) => c,
            None => {
                let me = ctx.me();
                let (vm, server, server_vm) = (self.vm, self.server, self.server_vm);
                let c = with_cluster(ctx.world, |cl, w| {
                    add_conn(
                        w,
                        cl,
                        Endpoint {
                            actor: me,
                            flavor: Flavor::Guest(vm),
                        },
                        Endpoint {
                            actor: server,
                            flavor: Flavor::Guest(server_vm),
                        },
                        ConnSpec {
                            sriov: cl.costs.sriov_nics,
                            ..Default::default()
                        },
                    )
                });
                self.conn = Some(c);
                c
            }
        };
        self.seq += 1;
        self.sent_at = ctx.now();
        let vcpu = {
            let cl = ctx.world.ext.get::<Cluster>().expect("cluster");
            cl.vm(self.vm).vcpu
        };
        let send = ConnSend {
            dir: Side::A,
            bytes: self.request_bytes,
            tag: self.seq,
            notify: false,
            span: SpanId::NONE,
        };
        ctx.cpu(vcpu, APP_CYCLES, CpuCategory::ClientApp, conn, send);
    }
}

impl Actor for NetperfClient {
    fn handle(&mut self, msg: BoxMsg, ctx: &mut Ctx<'_>) {
        if msg.is::<Start>() {
            if let Some(j) = self.job {
                ctx.job_started(j);
            }
            self.fire(ctx);
            return;
        }
        if let Ok(r) = downcast::<ConnRecv>(msg) {
            debug_assert_eq!(r.tag, self.seq);
            if ctx.now() >= self.measure_from {
                let rtt = ctx.now().since(self.sent_at).as_millis_f64();
                self.m_txns.incr(ctx.metrics());
                self.m_rtt_ms.record(ctx.metrics(), rtt);
                if let Some(j) = self.job {
                    ctx.job_progress(j, 0, 1);
                }
            }
            self.fire(ctx);
        }
    }
}

/// Builds a netperf pair between two VMs; returns the client actor (send
/// it [`Start`] to begin).
pub fn deploy_netperf(
    w: &mut World,
    client_vm: VmId,
    server_vm: VmId,
    request_bytes: u64,
    measure_from: SimTime,
) -> ActorId {
    deploy_netperf_with_job(w, client_vm, server_vm, request_bytes, measure_from, None)
}

/// [`deploy_netperf`] with an optional completion token bound to the
/// client.
pub fn deploy_netperf_with_job(
    w: &mut World,
    client_vm: VmId,
    server_vm: VmId,
    request_bytes: u64,
    measure_from: SimTime,
    job: Option<JobHandle>,
) -> ActorId {
    let server = w.add_actor("netperf-server", NetperfServer::new(server_vm, 128));
    let mut client = NetperfClient::new(client_vm, server, server_vm, request_bytes);
    client.measure_from = measure_from;
    client.job = job;
    w.add_actor("netperf-client", client)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lookbusy::Lookbusy;
    use vread_host::costs::Costs;

    fn world_with_vms(n_extra: usize) -> (World, VmId, VmId, Vec<ThreadId>) {
        let mut w = World::new(77);
        let mut cl = Cluster::new(Costs::default());
        let h = cl.add_host(&mut w, "h", 4, 3.2);
        let a = cl.add_vm(&mut w, h, "vmA");
        let b = cl.add_vm(&mut w, h, "vmB");
        let mut extra = Vec::new();
        for i in 0..n_extra {
            let vm = cl.add_vm(&mut w, h, &format!("bg{i}"));
            extra.push(cl.vm(vm).vcpu);
        }
        w.ext.insert(cl);
        (w, a, b, extra)
    }

    fn a2_vcpu(w: &World, vm: VmId) -> ThreadId {
        w.ext.get::<Cluster>().unwrap().vm(vm).vcpu
    }

    fn rate(w: &mut World, client: ActorId) -> f64 {
        w.send_now(client, Start);
        w.run_until(SimTime::from_nanos(1_100_000_000));
        w.metrics.counter("netperf_txns") // over exactly 1s
    }

    #[test]
    fn transaction_rate_reasonable_and_size_sensitive() {
        let (mut w, a, b, _) = world_with_vms(0);
        let c = deploy_netperf(&mut w, a, b, 32 * 1024, SimTime::from_nanos(100_000_000));
        let r32 = rate(&mut w, c);
        assert!(r32 > 3_000.0 && r32 < 40_000.0, "32KB rate {r32}/s");

        let (mut w2, a2, b2, _) = world_with_vms(0);
        let c2 = deploy_netperf(
            &mut w2,
            a2,
            b2,
            128 * 1024,
            SimTime::from_nanos(100_000_000),
        );
        let r128 = rate(&mut w2, c2);
        assert!(r128 < r32, "128KB rate ({r128}) below 32KB rate ({r32})");
    }

    #[test]
    fn lookbusy_contention_drops_rate() {
        let (mut w, a, b, _) = world_with_vms(0);
        let c = deploy_netperf(&mut w, a, b, 32 * 1024, SimTime::from_nanos(100_000_000));
        let quiet = rate(&mut w, c);

        let (mut w2, a2, b2, extra) = world_with_vms(2);
        let n = extra.len();
        for t in extra {
            Lookbusy::spawn_default(&mut w2, t);
        }
        let host = w2.thread_host(a2_vcpu(&w2, a2));
        w2.set_cache_pressure(host, crate::lookbusy::llc_pressure(n));
        let c2 = deploy_netperf(&mut w2, a2, b2, 32 * 1024, SimTime::from_nanos(100_000_000));
        let busy = rate(&mut w2, c2);
        let drop = 1.0 - busy / quiet;
        assert!(
            drop > 0.05 && drop < 0.6,
            "contended rate should drop noticeably (quiet {quiet}, busy {busy}, drop {drop:.2})"
        );
    }
}

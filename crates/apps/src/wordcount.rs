//! WordCount — the canonical Hadoop MapReduce job, as an additional
//! consumer of the HDFS read path.
//!
//! The paper's introduction motivates vRead with MapReduce workloads
//! whose inputs stream from HDFS. This model runs map tasks (tokenize +
//! combine, CPU per byte) over input splits read through the real
//! `DfsClient`, a shuffle/sort phase (CPU over the intermediate data),
//! and a reduce phase that writes the (much smaller) output back to
//! HDFS — so both directions of the DFS are exercised.

use vread_hdfs::client::{DfsRead, DfsReadDone, DfsWrite, DfsWriteDone};
use vread_host::cluster::{Cluster, VmId};
use vread_sim::prelude::*;

/// WordCount cost knobs.
#[derive(Debug, Clone)]
pub struct WordCountConfig {
    /// Map-side cycles per input byte (tokenizing, hashing, combining).
    pub map_cyc_per_byte: f64,
    /// Shuffle+sort cycles per intermediate byte.
    pub shuffle_cyc_per_byte: f64,
    /// Reduce cycles per intermediate byte.
    pub reduce_cyc_per_byte: f64,
    /// Intermediate data size as a fraction of the input (combiners
    /// shrink it hard for natural text).
    pub intermediate_ratio: f64,
    /// Output size as a fraction of the input.
    pub output_ratio: f64,
    /// Input split (map task) size.
    pub split_bytes: u64,
    /// Read buffer within a map task.
    pub buffer_bytes: u64,
}

impl Default for WordCountConfig {
    fn default() -> Self {
        WordCountConfig {
            map_cyc_per_byte: 6.0,
            shuffle_cyc_per_byte: 2.0,
            reduce_cyc_per_byte: 1.5,
            intermediate_ratio: 0.10,
            output_ratio: 0.02,
            split_bytes: 64 << 20,
            buffer_bytes: 1 << 20,
        }
    }
}

/// Job phases (exposed in metrics).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Map,
    Shuffle,
    Reduce,
    Done,
}

struct MapCpuDone {
    bytes: u64,
}
struct PhaseCpuDone;

/// The WordCount driver actor.
///
/// Metrics: `wc_input_bytes`, `wc_done`, `wc_done_at_s`,
/// `wc_map_done_at_s`.
pub struct WordCount {
    client: ActorId,
    vm: VmId,
    input: String,
    input_bytes: u64,
    cfg: WordCountConfig,
    phase: Phase,
    offset: u64,
    req: u64,
    job: Option<JobHandle>,
}

impl WordCount {
    /// Creates a job over `input` (`input_bytes` long, already in HDFS)
    /// through `client`.
    pub fn new(
        client: ActorId,
        vm: VmId,
        input: String,
        input_bytes: u64,
        cfg: WordCountConfig,
    ) -> Self {
        WordCount {
            client,
            vm,
            input,
            input_bytes,
            cfg,
            phase: Phase::Map,
            offset: 0,
            req: 0,
            job: None,
        }
    }

    /// Binds a completion token: the job signals start, map-side
    /// progress and completion on `job` in addition to its metrics.
    pub fn with_job(mut self, job: JobHandle) -> Self {
        self.job = Some(job);
        self
    }

    fn vcpu(&self, ctx: &Ctx<'_>) -> ThreadId {
        ctx.world
            .ext
            .get::<Cluster>()
            .expect("cluster")
            .vm(self.vm)
            .vcpu
    }

    fn next_read(&mut self, ctx: &mut Ctx<'_>) {
        if self.offset >= self.input_bytes {
            self.enter_shuffle(ctx);
            return;
        }
        let len = self
            .cfg
            .buffer_bytes
            .min(self.input_bytes - self.offset)
            .min(self.cfg.split_bytes - (self.offset % self.cfg.split_bytes));
        self.req += 1;
        let me = ctx.me();
        ctx.send(
            self.client,
            DfsRead {
                req: self.req,
                reply_to: me,
                path: self.input.clone(),
                offset: self.offset,
                len,
                pread: false,
            },
        );
        self.offset += len;
    }

    fn enter_shuffle(&mut self, ctx: &mut Ctx<'_>) {
        self.phase = Phase::Shuffle;
        let now_s = ctx.now().as_secs_f64();
        ctx.metrics().sample("wc_map_done_at_s", now_s);
        let inter = (self.input_bytes as f64 * self.cfg.intermediate_ratio) as u64;
        let cycles = (inter as f64 * self.cfg.shuffle_cyc_per_byte) as u64;
        let vcpu = self.vcpu(ctx);
        let me = ctx.me();
        ctx.chain(
            vec![Stage::cpu(vcpu, cycles, CpuCategory::MapReduce)],
            me,
            PhaseCpuDone,
        );
    }

    fn enter_reduce(&mut self, ctx: &mut Ctx<'_>) {
        self.phase = Phase::Reduce;
        let inter = (self.input_bytes as f64 * self.cfg.intermediate_ratio) as u64;
        let cycles = (inter as f64 * self.cfg.reduce_cyc_per_byte) as u64;
        let vcpu = self.vcpu(ctx);
        let me = ctx.me();
        ctx.chain(
            vec![Stage::cpu(vcpu, cycles, CpuCategory::MapReduce)],
            me,
            PhaseCpuDone,
        );
    }

    fn write_output(&mut self, ctx: &mut Ctx<'_>) {
        self.phase = Phase::Done;
        let out = ((self.input_bytes as f64 * self.cfg.output_ratio) as u64).max(1);
        self.req += 1;
        let me = ctx.me();
        ctx.send(
            self.client,
            DfsWrite {
                req: self.req,
                reply_to: me,
                path: format!("{}.out", self.input),
                bytes: out,
            },
        );
    }
}

impl Actor for WordCount {
    fn handle(&mut self, msg: BoxMsg, ctx: &mut Ctx<'_>) {
        if msg.is::<Start>() {
            let now_s = ctx.now().as_secs_f64();
            ctx.metrics().sample("wc_start_at_s", now_s);
            if let Some(j) = self.job {
                ctx.job_started(j);
            }
            self.next_read(ctx);
            return;
        }
        let msg = match downcast::<DfsReadDone>(msg) {
            Ok(d) => {
                // map-side CPU over the split bytes
                let cycles = (d.bytes as f64 * self.cfg.map_cyc_per_byte) as u64;
                let vcpu = self.vcpu(ctx);
                let me = ctx.me();
                ctx.chain(
                    vec![Stage::cpu(vcpu, cycles, CpuCategory::MapReduce)],
                    me,
                    MapCpuDone { bytes: d.bytes },
                );
                return;
            }
            Err(m) => m,
        };
        let msg = match downcast::<MapCpuDone>(msg) {
            Ok(mc) => {
                ctx.metrics().add("wc_input_bytes", mc.bytes as f64);
                if let Some(j) = self.job {
                    ctx.job_progress(j, mc.bytes, 1);
                }
                self.next_read(ctx);
                return;
            }
            Err(m) => m,
        };
        let msg = match downcast::<PhaseCpuDone>(msg) {
            Ok(_) => {
                match self.phase {
                    Phase::Shuffle => self.enter_reduce(ctx),
                    Phase::Reduce => self.write_output(ctx),
                    _ => {}
                }
                return;
            }
            Err(m) => m,
        };
        if msg.is::<DfsWriteDone>() {
            ctx.metrics().add("wc_done", 1.0);
            let now_s = ctx.now().as_secs_f64();
            ctx.metrics().sample("wc_done_at_s", now_s);
            if let Some(j) = self.job {
                ctx.job_completed(j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vread_hdfs::client::{add_client, VanillaPath};
    use vread_hdfs::deploy_hdfs;
    use vread_hdfs::populate::{populate_file, Placement};
    use vread_host::costs::Costs;

    fn run_job() -> World {
        let mut w = World::new(51);
        let mut cl = Cluster::new(Costs::default());
        let h = cl.add_host(&mut w, "h", 4, 2.0);
        let cvm = cl.add_vm(&mut w, h, "client");
        let dvm = cl.add_vm(&mut w, h, "dn");
        w.ext.insert(cl);
        let (_, dns) = deploy_hdfs(&mut w, cvm, &[dvm]);
        populate_file(&mut w, "/input", 32 << 20, &Placement::One(dns[0]));
        let client = add_client(&mut w, cvm, Box::new(VanillaPath::new()));
        let job = WordCount::new(
            client,
            cvm,
            "/input".into(),
            32 << 20,
            WordCountConfig::default(),
        );
        let a = w.add_actor("wc", job);
        w.send_now(a, Start);
        w.run();
        w
    }

    #[test]
    fn job_runs_all_phases_and_writes_output() {
        let w = run_job();
        assert_eq!(w.metrics.counter("wc_done"), 1.0);
        assert_eq!(w.metrics.counter("wc_input_bytes"), (32 << 20) as f64);
        // output written back to HDFS
        let meta = w.ext.get::<vread_hdfs::HdfsMeta>().unwrap();
        let out = meta.file("/input.out").expect("output file");
        assert_eq!(out.size(), ((32u64 << 20) as f64 * 0.02) as u64);
        // shuffle/reduce happen after the map phase
        let map_done = w.metrics.mean("wc_map_done_at_s");
        let done = w.metrics.mean("wc_done_at_s");
        assert!(done > map_done);
    }

    #[test]
    fn map_phase_dominates_for_cpu_heavy_config() {
        let w = run_job();
        let start = w.metrics.mean("wc_start_at_s");
        let map_done = w.metrics.mean("wc_map_done_at_s");
        let done = w.metrics.mean("wc_done_at_s");
        let map_frac = (map_done - start) / (done - start);
        assert!(map_frac > 0.5, "map phase fraction {map_frac}");
    }
}
